"""Unit tests for state/letter interning and the vectorized batch engine."""

import random

import numpy as np
import pytest

from repro.core.errors import (
    ExecutionError,
    OutputNotReachedError,
    ProtocolNotVectorizableError,
)
from repro.core.interning import Interner, tabulate_protocol
from repro.graphs import Graph, cycle_graph, gnp_random_graph, path_graph, random_tree
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.coloring import TreeColoringProtocol
from repro.protocols.mis import MIS_STATES, MISProtocol
from repro.scheduling.sync_engine import run_synchronous
from repro.scheduling.vectorized_engine import (
    VectorizedEngine,
    compile_protocol,
    run_vectorized,
)


class _UnboundedCounterProtocol(BroadcastProtocol):
    """A lazy protocol whose state set grows without bound.

    Legal for the interpreter (it just keeps counting) but impossible to
    tabulate — the closure hits ``max_states`` and the vectorized backend
    must refuse it.
    """

    def initial_state(self, input_value=None) -> int:
        return 0

    def query_letter(self, state) -> str:
        return "TOKEN"

    def options(self, state, count):
        from repro.core.protocol import TransitionChoice

        return (TransitionChoice(int(state) + 1, "TOKEN"),)

    def is_output_state(self, state) -> bool:
        return False


class TestInterner:
    def test_ids_are_dense_and_first_seen_ordered(self):
        interner = Interner(["a", "b"])
        assert interner.id_of("a") == 0
        assert interner.id_of("b") == 1
        assert interner.intern("c") == 2
        assert interner.intern("a") == 0  # idempotent
        assert interner.values == ("a", "b", "c")
        assert len(interner) == 3
        assert "c" in interner and "d" not in interner

    def test_value_roundtrip(self):
        interner = Interner()
        ident = interner.intern(("tuple", 1))
        assert interner.value_of(ident) == ("tuple", 1)


class TestTabulation:
    def test_mis_tabulates_to_its_seven_states(self):
        tabulation = tabulate_protocol(MISProtocol())
        assert set(tabulation.states) <= set(MIS_STATES)
        # DOWN1 is the only root; every state it can reach is included.
        assert tabulation.states[0] == "DOWN1"
        assert tabulation.num_states == len(MIS_STATES)
        # Alphabet letters keep their fixed order and ids 0..|Σ|-1.
        assert tabulation.letters[: tabulation.alphabet_size] == MIS_STATES

    def test_output_mask_matches_protocol(self):
        protocol = MISProtocol()
        tabulation = tabulate_protocol(protocol)
        for state, flag in zip(tabulation.states, tabulation.output_mask):
            assert flag == protocol.is_output_state(state)

    def test_broadcast_strict_protocol_tabulates(self):
        tabulation = tabulate_protocol(BroadcastProtocol())
        assert set(tabulation.states) == {"IDLE", "SOURCE", "INFORMED"}
        # Strict protocols query exactly one letter per state.
        assert all(len(queried) == 1 for queried in tabulation.queried)

    def test_state_budget_is_enforced(self):
        with pytest.raises(ProtocolNotVectorizableError):
            tabulate_protocol(TreeColoringProtocol(), max_states=5)

    def test_cell_budget_is_enforced(self):
        with pytest.raises(ProtocolNotVectorizableError):
            tabulate_protocol(TreeColoringProtocol(), max_cells=10)

    def test_non_protocol_objects_are_rejected(self):
        with pytest.raises(ProtocolNotVectorizableError):
            tabulate_protocol(object())

    def test_under_declared_queried_letters_are_rejected(self):
        """A protocol whose options() reads an undeclared letter must not
        compile into a silently-wrong table."""

        class LyingProtocol(MISProtocol):
            def queried_letters(self, state):
                # Claims to ignore everything — but options() still reacts
                # to the delaying letters, the WIN letter, the UP counts…
                return ()

        with pytest.raises(ProtocolNotVectorizableError):
            tabulate_protocol(LyingProtocol())
        # auto still runs it (interpreted), producing the reference result.
        graph = cycle_graph(10)
        auto = run_synchronous(graph, LyingProtocol(), seed=2, backend="auto")
        reference = run_synchronous(graph, MISProtocol(), seed=2)
        assert auto.final_states == reference.final_states

    def test_observation_id_matches_enumeration_order(self):
        tabulation = tabulate_protocol(TreeColoringProtocol())
        b1 = tabulation.bounding + 1
        state_id = next(
            i for i, queried in enumerate(tabulation.queried) if len(queried) == 3
        )
        assert tabulation.observation_id(state_id, (1, 2, 3)) == (1 * b1 + 2) * b1 + 3
        with pytest.raises(ValueError):
            tabulation.observation_id(state_id, (1,))


class TestVectorizedEngine:
    def test_runs_mis_to_an_output_configuration(self):
        graph = cycle_graph(12)
        result = run_vectorized(graph, MISProtocol(), seed=3)
        assert result.reached_output
        assert set(result.final_states) <= {"WIN", "LOSE"}

    def test_rejects_non_protocol_objects(self):
        with pytest.raises(ExecutionError):
            VectorizedEngine(path_graph(2), object())

    def test_rejects_unknown_rng_mode(self):
        with pytest.raises(ExecutionError):
            VectorizedEngine(path_graph(2), BroadcastProtocol(), rng_mode="jax")

    def test_round_budget_can_raise_with_partial_result(self):
        graph = cycle_graph(9)
        with pytest.raises(OutputNotReachedError) as excinfo:
            run_vectorized(graph, MISProtocol(), seed=1, max_rounds=1)
        partial = excinfo.value.result
        assert partial is not None and partial.rounds == 1

    def test_observer_sees_every_round_with_decoded_states(self):
        seen = []
        graph = path_graph(6)
        engine = VectorizedEngine(
            graph,
            BroadcastProtocol(),
            seed=1,
            inputs=broadcast_inputs(0),
            observer=lambda index, states: seen.append((index, states)),
        )
        result = engine.run()
        assert len(seen) == result.rounds
        # Observer receives protocol state objects, not interned ids.
        assert all(
            state in ("IDLE", "SOURCE", "INFORMED")
            for _, states in seen
            for state in states
        )

    def test_numpy_rng_mode_is_reproducible(self):
        graph = gnp_random_graph(64, 0.1, seed=2)
        first = run_vectorized(graph, MISProtocol(), seed=5, rng_mode="numpy")
        second = run_vectorized(graph, MISProtocol(), seed=5, rng_mode="numpy")
        assert first.summary_fields() == second.summary_fields()
        assert first.reached_output

    def test_shared_compiled_table_can_be_reused_across_graphs(self):
        compiled = compile_protocol(MISProtocol())
        for n in (6, 10, 15):
            result = run_vectorized(
                cycle_graph(n), MISProtocol(), seed=n, compiled=compiled
            )
            reference = run_synchronous(cycle_graph(n), MISProtocol(), seed=n)
            assert result.summary_fields() == reference.summary_fields()

    def test_external_rng_matches_seeded_interpreter(self):
        graph = random_tree(40, seed=8)
        result = VectorizedEngine(graph, MISProtocol(), rng=random.Random(9)).run()
        reference = run_synchronous(graph, MISProtocol(), seed=9)
        # Same draw sequence, but the engine cannot know the seed number.
        assert result.final_states == reference.final_states
        assert result.rounds == reference.rounds

    def test_isolated_nodes_count_messages_like_the_interpreter(self):
        # A graph with an isolated node: its transmissions go nowhere but
        # are still counted, exactly as PortTable.broadcast does.
        graph = Graph(4, [(0, 1), (1, 2)])
        vectorized = run_vectorized(graph, MISProtocol(), seed=2)
        interpreted = run_synchronous(graph, MISProtocol(), seed=2)
        assert vectorized.summary_fields() == interpreted.summary_fields()

    def test_empty_graph_falls_back_on_declared_input_states(self):
        result = run_synchronous(Graph(0, []), MISProtocol(), seed=0, backend="auto")
        assert result.reached_output and result.rounds == 0

    def test_synchronizer_compiled_protocol_also_vectorizes(self):
        from repro.compilers import compile_to_asynchronous

        graph = path_graph(4)
        results = [
            run_synchronous(
                graph,
                compile_to_asynchronous(BroadcastProtocol()),
                seed=1,
                inputs=broadcast_inputs(0),
                max_rounds=10_000,
                backend=backend,
            )
            for backend in ("python", "vectorized")
        ]
        assert results[0].summary_fields() == results[1].summary_fields()

    def test_backend_auto_falls_back_for_non_enumerable_protocols(self):
        protocol = _UnboundedCounterProtocol()
        graph = path_graph(3)
        with pytest.raises(ProtocolNotVectorizableError):
            run_synchronous(graph, _UnboundedCounterProtocol(), seed=1,
                            max_rounds=10, backend="vectorized",
                            raise_on_timeout=False)
        result = run_synchronous(graph, protocol, seed=1, max_rounds=10,
                                 backend="auto", raise_on_timeout=False)
        reference = run_synchronous(graph, _UnboundedCounterProtocol(), seed=1,
                                    max_rounds=10, raise_on_timeout=False)
        assert result.summary_fields() == reference.summary_fields()

    def test_csr_adjacency_shape(self):
        graph = Graph(4, [(0, 1), (1, 2), (0, 3)])
        indptr, indices = graph.csr_adjacency()
        assert list(indptr) == [0, 2, 4, 5, 6]
        assert list(indices) == [1, 3, 0, 2, 1, 0]
        assert len(indices) == 2 * graph.num_edges

    def test_csr_adjacency_is_cached_and_read_only(self):
        graph = Graph(4, [(0, 1), (1, 2), (0, 3)])
        first = graph.csr_adjacency()
        second = graph.csr_adjacency()
        assert first[0] is second[0] and first[1] is second[1]
        indptr, indices = first
        assert indptr.dtype == np.int64 and indices.dtype == np.int64
        assert not indptr.flags.writeable and not indices.flags.writeable
        with pytest.raises(ValueError):
            indices[0] = 99
