"""Unit tests for result export (analysis.io) and ASCII visualisation."""

import json

from repro.analysis.experiments import experiment_model_requirements
from repro.analysis.io import (
    execution_to_dict,
    read_sweep_json,
    report_to_dict,
    sweep_to_rows,
    write_execution_json,
    write_report_json,
    write_reports_markdown,
    write_sweep_csv,
    write_sweep_json,
)
from repro.analysis.sweep import sweep_protocol
from repro.analysis.visualize import (
    MIS_GLYPHS,
    capture_history,
    default_glyph,
    degree_profile,
    render_mis_timeline,
    render_output_summary,
    render_timeline,
)
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import MISProtocol
from repro.scheduling.sync_engine import run_synchronous


def small_sweep():
    return sweep_protocol(
        MISProtocol,
        {"cycle": lambda n, seed=None: cycle_graph(n)},
        sizes=[6, 9],
        repetitions=2,
        base_seed=1,
    )


class TestSweepExport:
    def test_rows_contain_all_standard_fields(self):
        rows = sweep_to_rows(small_sweep())
        assert len(rows) == 4
        assert {"family", "size", "cost", "valid"} <= set(rows[0])

    def test_csv_roundtrip_shape(self, tmp_path):
        path = write_sweep_csv(small_sweep(), tmp_path / "sweep.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 4  # header plus one line per record
        assert lines[0].startswith("family,size")

    def test_json_roundtrip_preserves_records(self, tmp_path):
        sweep = small_sweep()
        path = write_sweep_json(sweep, tmp_path / "sweep.json")
        loaded = read_sweep_json(path)
        assert loaded.protocol_name == sweep.protocol_name
        assert [r.cost for r in loaded.records] == [r.cost for r in sweep.records]
        assert loaded.mean_cost_by_size() == sweep.mean_cost_by_size()


class TestReportExport:
    def test_report_to_dict_and_json(self, tmp_path):
        report = experiment_model_requirements()
        payload = report_to_dict(report)
        assert payload["experiment_id"] == "E12"
        path = write_report_json(report, tmp_path / "e12.json")
        assert json.loads(path.read_text())["passed"] is True

    def test_markdown_export_contains_tables(self, tmp_path):
        report = experiment_model_requirements()
        path = write_reports_markdown([report], tmp_path / "reports.md")
        text = path.read_text()
        assert "## E12" in text
        assert "| protocol |" in text or "| protocol" in text


class TestExecutionExport:
    def test_execution_to_dict(self, tmp_path):
        graph = path_graph(4)
        result = run_synchronous(graph, BroadcastProtocol(), seed=1, inputs=broadcast_inputs(0))
        payload = execution_to_dict(result)
        assert payload["num_nodes"] == 4
        assert payload["reached_output"] is True
        path = write_execution_json(result, tmp_path / "run.json")
        assert json.loads(path.read_text())["protocol"] == "broadcast"


class TestVisualisation:
    def test_capture_history_starts_with_the_initial_configuration(self):
        graph = path_graph(5)
        history = capture_history(graph, MISProtocol(), seed=1)
        assert history[0] == ("DOWN1",) * 5
        assert len(history) >= 2

    def test_render_timeline_has_one_row_per_round(self):
        graph = cycle_graph(6)
        text = render_timeline(graph, MISProtocol(), seed=2, glyphs=MIS_GLYPHS)
        lines = text.splitlines()
        assert lines[0].startswith("nodes 0..5")
        assert all(line.startswith("round") for line in lines[1:])

    def test_render_mis_timeline_ends_with_winners_and_losers(self):
        text = render_mis_timeline(star_graph(6), seed=3)
        final_row = text.splitlines()[-1].split("| ")[1]
        assert set(final_row) <= {"#", "."}
        assert "#" in final_row

    def test_wide_graphs_are_truncated(self):
        from repro.graphs import empty_graph

        text = render_timeline(empty_graph(200), MISProtocol(), seed=1, max_nodes=50)
        assert "(truncated)" in text

    def test_render_output_summary(self):
        graph = path_graph(4)
        summary = render_output_summary(graph, {0: True, 1: False, 2: True, 3: False})
        assert summary == "#.#."

    def test_default_glyph(self):
        assert default_glyph("WIN") == "W"
        assert default_glyph(("pause", 1)) == "("

    def test_degree_profile_lists_every_degree(self):
        text = degree_profile(star_graph(4))
        assert "deg   1" in text and "deg   4" in text
