"""Unit tests for the Cole–Vishkin baseline."""

import pytest

from repro.baselines.cole_vishkin import (
    cole_vishkin_3_coloring,
    root_tree,
    tree_depth,
    _lowest_differing_bit,
)
from repro.core.errors import VerificationError
from repro.graphs import (
    Graph,
    binary_tree,
    caterpillar_graph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.verification import is_proper_coloring


class TestRooting:
    def test_root_tree_parents(self):
        parents = root_tree(path_graph(4), root=0)
        assert parents[0] is None
        assert parents[1] == 0
        assert parents[3] == 2

    def test_forest_gets_one_root_per_component(self):
        forest = Graph(4, [(0, 1), (2, 3)])
        parents = root_tree(forest, root=0)
        assert parents.count(None) == 2

    def test_tree_depth(self):
        assert tree_depth(path_graph(5), root=0) == 4
        assert tree_depth(star_graph(6), root=0) == 1


class TestBitTricks:
    @pytest.mark.parametrize("a, b, expected", [
        (0b1010, 0b1000, 1),
        (0b1010, 0b1011, 0),
        (5, 1, 2),
    ])
    def test_lowest_differing_bit(self, a, b, expected):
        assert _lowest_differing_bit(a, b) == expected


class TestColoring:
    @pytest.mark.parametrize("tree_builder", [
        lambda: path_graph(50),
        lambda: star_graph(40),
        lambda: binary_tree(63),
        lambda: caterpillar_graph(10, 3),
        lambda: random_tree(200, seed=3),
        lambda: random_tree(500, seed=9),
    ])
    def test_produces_a_proper_3_coloring(self, tree_builder):
        tree = tree_builder()
        result = cole_vishkin_3_coloring(tree)
        assert is_proper_coloring(tree, result.colors)
        assert set(result.colors.values()) <= {0, 1, 2}

    def test_single_node_tree(self):
        result = cole_vishkin_3_coloring(Graph(1, []))
        assert result.colors == {0: 0}

    def test_empty_graph(self):
        result = cole_vishkin_3_coloring(Graph(0, []))
        assert result.colors == {}

    def test_forest_input_is_supported(self):
        forest = Graph(6, [(0, 1), (1, 2), (3, 4)])
        result = cole_vishkin_3_coloring(forest)
        assert is_proper_coloring(forest, result.colors)

    def test_cycles_are_rejected(self):
        with pytest.raises(VerificationError):
            cole_vishkin_3_coloring(cycle_graph(5))

    def test_round_count_is_tiny_even_for_large_trees(self):
        result = cole_vishkin_3_coloring(random_tree(4000, seed=1))
        # O(log* n) reduction plus six shift-down rounds.
        assert result.rounds <= 20
        assert result.shift_down_phases == 3
