"""Unit tests for the vectorized asynchronous engine and the lazy table."""


import pytest

np = pytest.importorskip("numpy")

from repro.core.errors import (
    ExecutionError,
    OutputNotReachedError,
    ProtocolNotVectorizableError,
)
from repro.graphs import path_graph, star_graph
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import MISProtocol
from repro.scheduling.adversary import (
    AdversaryPolicy,
    AdversarySchedule,
    SynchronousAdversary,
    UniformRandomAdversary,
    default_adversary_suite,
)
from repro.scheduling.async_engine import run_asynchronous
from repro.scheduling.compiled import LazyStrictTable
from repro.scheduling.vectorized_async_engine import (
    VectorizedAsynchronousEngine,
    run_vectorized_asynchronous,
)


class _ScalarOnlyAdversary(AdversaryPolicy):
    """A stateful custom policy: legitimate, but not batch-capable."""

    name = "scalar-only"

    def start(self, graph, rng):
        class Schedule(AdversarySchedule):
            def step_length(self, node, step):
                return rng.uniform(0.5, 1.5)

            def delivery_delay(self, sender, step, receiver):
                return rng.uniform(0.5, 1.5)

        return Schedule()


class TestLazyStrictTable:
    def test_rejects_extended_protocols(self):
        with pytest.raises(ProtocolNotVectorizableError):
            LazyStrictTable(MISProtocol())

    def test_interns_states_and_cells_on_demand(self):
        protocol = BroadcastProtocol()
        table = LazyStrictTable(protocol)
        assert table.num_states == 0
        quiet = table.state_id(protocol.initial_state(None))
        assert table.num_states == 1
        assert table.num_cells == 0
        offset, count = table.cell(quiet, 0)
        assert count >= 1
        next_state, emit = table.option(offset)
        assert 0 <= next_state < table.num_states
        assert table.num_cells == 1
        # Re-evaluating the same cell is free and stable.
        assert table.cell(quiet, 0) == (offset, count)

    def test_arrays_views_track_growth(self):
        protocol = BroadcastProtocol()
        table = LazyStrictTable(protocol)
        state = table.state_id(protocol.initial_state("source"))
        query, output_mask, cell_offset, cell_count, *_ = table.arrays()
        assert len(query) == table.num_states
        assert len(cell_offset) == table.num_states * (protocol.bounding.value + 1)
        table.ensure_cells(np.array([state]), np.array([0]))
        _, _, cell_offset, cell_count, *_ = table.arrays()
        assert cell_offset[state * (protocol.bounding.value + 1)] >= 0

    def test_state_cap_raises_not_vectorizable(self):
        protocol = BroadcastProtocol()
        table = LazyStrictTable(protocol, max_states=1)
        table.state_id(protocol.initial_state("source"))
        with pytest.raises(ProtocolNotVectorizableError):
            table.state_id(protocol.initial_state(None))


class TestEngineContract:
    def test_extended_protocols_are_rejected(self):
        with pytest.raises(ExecutionError):
            VectorizedAsynchronousEngine(path_graph(3), MISProtocol())

    def test_scalar_only_adversaries_are_rejected(self):
        with pytest.raises(ProtocolNotVectorizableError):
            VectorizedAsynchronousEngine(
                path_graph(3), BroadcastProtocol(), adversary=_ScalarOnlyAdversary()
            )

    def test_auto_backend_downgrades_scalar_only_adversaries(self):
        result = run_asynchronous(
            path_graph(4),
            BroadcastProtocol(),
            adversary=_ScalarOnlyAdversary(),
            seed=1,
            adversary_seed=2,
            inputs=broadcast_inputs(0),
            backend="auto",
        )
        assert result.reached_output
        assert result.metadata["backend"] == "python"

    def test_vectorized_backend_rejects_observers(self):
        with pytest.raises(ExecutionError):
            run_asynchronous(
                path_graph(3),
                BroadcastProtocol(),
                inputs=broadcast_inputs(0),
                backend="vectorized",
                observer=lambda record: None,
            )

    def test_event_budget_can_raise(self):
        with pytest.raises(OutputNotReachedError):
            run_vectorized_asynchronous(
                path_graph(6),
                BroadcastProtocol(),
                inputs=broadcast_inputs(0),
                seed=1,
                max_events=3,
            )


class TestExecution:
    def test_broadcast_reaches_everyone_under_every_adversary(self):
        graph = star_graph(5)
        for adversary in default_adversary_suite():
            result = run_vectorized_asynchronous(
                graph,
                BroadcastProtocol(),
                inputs=broadcast_inputs(0),
                seed=2,
                adversary=adversary,
                adversary_seed=7,
            )
            assert result.reached_output
            assert all(result.outputs[node] for node in graph.nodes)
            assert result.metadata["backend"] == "vectorized"

    def test_time_units_are_normalised_by_the_largest_parameter(self):
        result = run_vectorized_asynchronous(
            path_graph(6),
            BroadcastProtocol(),
            inputs=broadcast_inputs(0),
            seed=1,
            adversary=SynchronousAdversary(),
        )
        assert result.time_units == pytest.approx(result.elapsed_time)
        assert result.metadata["max_parameter"] == pytest.approx(1.0)

    def test_same_seeds_reproduce_the_execution(self):
        runs = [
            run_vectorized_asynchronous(
                star_graph(6),
                BroadcastProtocol(),
                inputs=broadcast_inputs(0),
                seed=9,
                adversary=UniformRandomAdversary(),
                adversary_seed=17,
            )
            for _ in range(2)
        ]
        assert runs[0].time_units == runs[1].time_units
        assert runs[0].final_states == runs[1].final_states

    def test_fallback_adversary_seed_matches_the_interpreted_engine(self):
        """Without an explicit adversary_seed both backends derive the same
        deterministic one — so they still agree run-for-run."""
        results = [
            run_asynchronous(
                path_graph(7),
                BroadcastProtocol(),
                inputs=broadcast_inputs(0),
                seed=5,
                adversary=UniformRandomAdversary(),
                backend=backend,
                raise_on_timeout=False,
            )
            for backend in ("python", "vectorized")
        ]
        assert results[0].time_units == results[1].time_units
        assert results[0].outputs == results[1].outputs

    def test_shared_tables_amortise_across_runs(self):
        protocol = BroadcastProtocol()
        table = LazyStrictTable(protocol)
        first = run_vectorized_asynchronous(
            path_graph(6), protocol, inputs=broadcast_inputs(0), seed=1, table=table
        )
        cells_after_first = table.num_cells
        second = run_vectorized_asynchronous(
            path_graph(6), protocol, inputs=broadcast_inputs(0), seed=1, table=table
        )
        assert table.num_cells == cells_after_first
        assert first.time_units == second.time_units
