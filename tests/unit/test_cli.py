"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_every_subcommand_is_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("mis", "color", "matching", "broadcast", "lba", "experiment", "census"):
            assert command in text

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestProtocolCommands:
    def test_mis_synchronous(self, capsys):
        exit_code = main(["mis", "--nodes", "32", "--seed", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "maximal independent set" in output
        assert "valid" in output and "True" in output

    def test_mis_asynchronous_with_adversary(self, capsys):
        exit_code = main([
            "mis", "--nodes", "8", "--family", "gnp_dense", "--seed", "2",
            "--asynchronous", "--adversary", "skewed-rates",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "asynchronous" in output

    def test_mis_json_output(self, capsys):
        exit_code = main(["mis", "--nodes", "16", "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["valid"] is True

    def test_color_command(self, capsys):
        exit_code = main(["color", "--nodes", "40", "--seed", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "3-coloring" in output

    def test_matching_command(self, capsys):
        exit_code = main(["matching", "--nodes", "24", "--seed", "6"])
        assert exit_code == 0
        assert "matching size" in capsys.readouterr().out

    def test_broadcast_command(self, capsys):
        exit_code = main(["broadcast", "--nodes", "20", "--seed", "7", "--source", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "informed nodes" in output


class TestLBACommand:
    def test_palindrome_word(self, capsys):
        exit_code = main(["lba", "--language", "palindromes", "--word", "abba"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "agrees" in output

    def test_empty_word(self, capsys):
        exit_code = main(["lba", "--language", "parity", "--word", ""])
        assert exit_code == 0

    def test_bad_symbols_are_rejected(self, capsys):
        exit_code = main(["lba", "--language", "parity", "--word", "abc"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not in the alphabet" in captured.err


class TestExperimentCommands:
    def test_quick_experiment(self, capsys):
        exit_code = main(["experiment", "E12", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "E12" in output and "shape holds : yes" in output

    def test_quick_e4(self, capsys):
        exit_code = main(["experiment", "E4", "--quick"])
        assert exit_code == 0

    def test_census_command(self, capsys):
        exit_code = main(["census"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "stone-age-mis" in output
