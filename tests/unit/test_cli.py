"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_every_subcommand_is_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "mis", "color", "matching", "broadcast", "lba",
                        "experiment", "census"):
            assert command in text

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestProtocolCommands:
    def test_mis_synchronous(self, capsys):
        exit_code = main(["mis", "--nodes", "32", "--seed", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "maximal independent set" in output
        assert "valid" in output and "True" in output

    def test_mis_asynchronous_with_adversary(self, capsys):
        exit_code = main([
            "mis", "--nodes", "8", "--family", "gnp_dense", "--seed", "2",
            "--asynchronous", "--adversary", "skewed-rates",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "asynchronous" in output

    def test_mis_json_output(self, capsys):
        exit_code = main(["mis", "--nodes", "16", "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["valid"] is True

    def test_color_command(self, capsys):
        exit_code = main(["color", "--nodes", "40", "--seed", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "3-coloring" in output

    def test_matching_command(self, capsys):
        exit_code = main(["matching", "--nodes", "24", "--seed", "6"])
        assert exit_code == 0
        assert "matching size" in capsys.readouterr().out

    def test_broadcast_command(self, capsys):
        exit_code = main(["broadcast", "--nodes", "20", "--seed", "7", "--source", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "informed nodes" in output


class TestGenericRunCommand:
    #: Full golden payload of one deterministic run: the generic command's
    #: JSON contract, asserted key for key so accidental schema or seed
    #: drift is caught immediately.  The kernel-tier probe is pinned to
    #: "absent" by the autouse fixture below, so the payload (including the
    #: loud degradation note) is identical on hosts with and without numba.
    GOLDEN_MIS_JSON = {
        "problem": "maximal independent set",
        "graph": "gnp_sparse n=16 m=29",
        "mode": "synchronous",
        "cost": "17.0 rounds",
        "mis size": 6,
        "backend": "vectorized (eager table)",
        "backend reason": (
            "reachable closure enumerated; eager table (session-precompiled) "
            "(kernel tier skipped: numba is not installed)"
        ),
        "valid": True,
    }

    @pytest.fixture(autouse=True)
    def _kernel_tier_absent(self, monkeypatch):
        from repro.scheduling import kernels

        monkeypatch.setattr(kernels, "_FORCE_MODE", "absent")

    def test_golden_json_output(self, capsys):
        exit_code = main(["run", "mis", "--nodes", "16", "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload == self.GOLDEN_MIS_JSON

    def test_alias_produces_the_same_payload(self, capsys):
        main(["run", "mis", "--nodes", "16", "--seed", "1", "--json"])
        generic = json.loads(capsys.readouterr().out)
        main(["mis", "--nodes", "16", "--seed", "1", "--json"])
        alias = json.loads(capsys.readouterr().out)
        assert generic == alias

    def test_list_registries_json(self, capsys):
        exit_code = main(["run", "--list", "--json"])
        census = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert set(census) == {
            "protocols",
            "graph_families",
            "adversaries",
            "churn_policies",
        }
        assert census["protocols"]["mis"] == "maximal independent set"
        assert {"mis", "coloring", "broadcast", "matching"} <= set(census["protocols"])
        assert "random_tree" in census["graph_families"]
        assert "skewed-rates" in census["adversaries"]
        assert "burst" in census["churn_policies"]

    def test_list_registries_human_readable(self, capsys):
        exit_code = main(["run", "--list"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "protocols:" in output and "adversaries:" in output

    def test_list_backends_json(self, capsys):
        exit_code = main(["run", "--list-backends", "--json"])
        census = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert [row["name"] for row in census] == ["python", "vectorized", "kernel"]
        assert [row["rank"] for row in census] == [0, 1, 2]
        by_name = {row["name"]: row for row in census}
        assert by_name["python"]["available"] is True
        assert by_name["vectorized"]["available"] is True
        # The fixture pins the kernel probe to "absent".
        assert by_name["kernel"]["available"] is False
        assert by_name["kernel"]["detail"] == "numba is not installed"
        assert by_name["kernel"]["supports_sharding"] is True

    def test_list_backends_human_readable(self, capsys):
        exit_code = main(["run", "--list-backends"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "backends" in output and "kernel" in output
        assert "UNAVAILABLE" in output  # the pinned-absent kernel tier

    def test_strict_kernel_request_fails_cleanly_without_numba(self, capsys):
        exit_code = main(["run", "mis", "--nodes", "8", "--backend", "kernel"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "kernel tier is unavailable" in captured.err
        assert "numba is not installed" in captured.err

    def test_registered_baseline_is_runnable(self, capsys):
        exit_code = main(["run", "luby", "--nodes", "32", "--seed", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["valid"] is True and payload["mis size"] > 0

    def test_unknown_protocol_reports_candidates(self, capsys):
        exit_code = main(["run", "mehs", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown protocol" in captured.err and "mis" in captured.err

    def test_run_without_protocol_is_an_error(self, capsys):
        exit_code = main(["run"])
        assert exit_code == 2
        assert "name a protocol" in capsys.readouterr().err

    def test_show_spec_round_trips(self, capsys):
        exit_code = main([
            "run", "broadcast", "--nodes", "10", "--seed", "4",
            "--input", "source=3", "--show-spec",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["protocol"] == "broadcast"
        assert payload["inputs"] == {"source": 3}
        from repro.api import RunSpec

        assert RunSpec.from_dict(payload).nodes == 10

    def test_runner_protocols_reject_asynchronous(self, capsys):
        exit_code = main(["run", "luby", "--nodes", "8", "--asynchronous"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "only supports the synchronous environment" in captured.err

    def test_non_object_spec_file_is_a_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "num.json"
        bad.write_text("42")
        exit_code = main(["run", "--spec", str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "must be built from a mapping" in captured.err

    def test_missing_spec_file_is_a_clean_error(self, capsys):
        exit_code = main(["run", "--spec", "/nonexistent/workload.json"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot read spec file" in captured.err

    def test_malformed_spec_file_is_a_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        exit_code = main(["run", "--spec", str(bad)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not valid JSON" in captured.err

    def test_bad_param_syntax_is_a_clean_error(self, capsys):
        exit_code = main(["run", "mis", "--param", "no-equals-sign"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "expects key=value" in captured.err

    def test_spec_file_execution(self, capsys, tmp_path):
        spec_file = tmp_path / "workload.json"
        spec_file.write_text(json.dumps({
            "protocol": "mis", "nodes": 16, "seed": 1, "backend": "vectorized",
        }))
        exit_code = main(["run", "--spec", str(spec_file), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["cost"] == self.GOLDEN_MIS_JSON["cost"]
        assert payload["mis size"] == self.GOLDEN_MIS_JSON["mis size"]

    def test_asynchronous_run_reports_adversary(self, capsys):
        exit_code = main([
            "run", "mis", "--nodes", "8", "--family", "gnp_dense", "--seed", "2",
            "--asynchronous", "--adversary", "bursty", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["mode"] == "asynchronous"
        assert payload["adversary"] == "bursty"
        assert "time units" in payload["cost"]


class TestLBACommand:
    def test_palindrome_word(self, capsys):
        exit_code = main(["lba", "--language", "palindromes", "--word", "abba"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "agrees" in output

    def test_empty_word(self, capsys):
        exit_code = main(["lba", "--language", "parity", "--word", ""])
        assert exit_code == 0

    def test_bad_symbols_are_rejected(self, capsys):
        exit_code = main(["lba", "--language", "parity", "--word", "abc"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not in the alphabet" in captured.err


class TestExperimentCommands:
    def test_quick_experiment(self, capsys):
        exit_code = main(["experiment", "E12", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "E12" in output and "shape holds : yes" in output

    def test_quick_e4(self, capsys):
        exit_code = main(["experiment", "E4", "--quick"])
        assert exit_code == 0

    def test_census_command(self, capsys):
        exit_code = main(["census"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "stone-age-mis" in output
