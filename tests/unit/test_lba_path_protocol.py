"""Unit tests for the Lemma 6.2 protocol (rLBA on a path network)."""

import pytest

from repro.automata.lba import LEFT_MARKER, RIGHT_MARKER
from repro.automata.languages import parity_lba, palindrome_lba
from repro.automata.lba_to_nfsm import (
    ACTIVE,
    HALTED,
    IDLE,
    LBAPathProtocol,
    decide_word_on_path,
    path_network_for_word,
)
from repro.core.alphabet import Observation
from repro.core.errors import AutomatonError


def observe(protocol, counts=None, **keyword_counts):
    """Observation helper; tuple-valued letters go through the ``counts`` dict."""
    merged = dict(counts or {})
    merged.update(keyword_counts)
    return Observation(
        protocol.alphabet,
        {letter: merged.get(letter, 0) for letter in protocol.alphabet},
    )


class TestNetworkConstruction:
    def test_path_has_two_marker_nodes(self):
        graph, inputs = path_network_for_word("01")
        assert graph.num_nodes == 4
        assert inputs[0] == (LEFT_MARKER, False)
        assert inputs[3] == (RIGHT_MARKER, False)
        assert inputs[1] == ("0", True)
        assert inputs[2] == ("1", False)

    def test_empty_word_puts_the_head_on_the_right_marker(self):
        graph, inputs = path_network_for_word("")
        assert graph.num_nodes == 2
        assert inputs[1] == (RIGHT_MARKER, True)


class TestProtocolStructure:
    def setup_method(self):
        self.protocol = LBAPathProtocol(parity_lba())

    def test_alphabet_size_is_constant_in_the_machine(self):
        machine = parity_lba()
        expected = 3 + 2 * len(machine.states) * 2
        assert len(self.protocol.alphabet) == expected

    def test_inputs_are_mandatory(self):
        with pytest.raises(AutomatonError):
            self.protocol.initial_state(None)

    def test_initial_states_reflect_head_position(self):
        with_head = self.protocol.initial_state(("0", True))
        without_head = self.protocol.initial_state(("1", False))
        assert with_head.role == ACTIVE
        assert with_head.lba_state == "even"
        assert without_head.role == IDLE
        assert without_head.side == "L"

    def test_left_marker_knows_the_head_is_to_its_right(self):
        marker = self.protocol.initial_state((LEFT_MARKER, False))
        assert marker.side == "R"

    def test_output_states_are_halted_cells(self):
        halted = self.protocol._halt(self.protocol.initial_state(("0", False)), True)
        assert self.protocol.is_output_state(halted)
        assert self.protocol.output_value(halted) is True


class TestTransitions:
    def setup_method(self):
        self.protocol = LBAPathProtocol(parity_lba())

    def test_active_node_moves_the_head_right_with_a_tagged_transfer(self):
        active = self.protocol.initial_state(("1", True))
        (choice,) = self.protocol.options(active, observe(self.protocol))
        direction, lba_state, parity = choice.emit
        assert direction == "R"
        assert lba_state == "odd"       # parity machine flips on a 1
        assert parity == 0
        assert choice.state.role == IDLE
        assert choice.state.side == "R"
        assert choice.state.sent_right_parity == 1

    def test_idle_node_accepts_a_matching_transfer(self):
        idle = self.protocol.initial_state(("0", False))
        observation = observe(self.protocol, {("R", "odd", 0): 1})
        (choice,) = self.protocol.options(idle, observation)
        assert choice.state.role == ACTIVE
        assert choice.state.lba_state == "odd"
        assert choice.state.expect_right_parity == 1

    def test_idle_node_ignores_stale_parity(self):
        idle = self.protocol.initial_state(("0", False))
        observation = observe(self.protocol, {("R", "odd", 1): 1})
        (choice,) = self.protocol.options(idle, observation)
        assert choice.state == idle

    def test_idle_node_ignores_transfers_moving_away(self):
        idle = self.protocol.initial_state(("0", False))  # head to its left
        observation = observe(self.protocol, {("L", "odd", 0): 1})
        (choice,) = self.protocol.options(idle, observation)
        assert choice.state == idle

    def test_flood_letters_halt_every_role(self):
        idle = self.protocol.initial_state(("0", False))
        (choice,) = self.protocol.options(idle, observe(self.protocol, ACCEPT=1))
        assert choice.state.role == HALTED
        assert choice.state.verdict is True
        assert choice.emit == "ACCEPT"

    def test_halted_nodes_are_silent_sinks(self):
        halted = self.protocol._halt(self.protocol.initial_state(("0", False)), False)
        (choice,) = self.protocol.options(halted, observe(self.protocol, ACCEPT=3))
        assert choice.state == halted
        assert not choice.transmits()

    def test_accepting_configuration_emits_the_accept_flood(self):
        machine = parity_lba()
        protocol = LBAPathProtocol(machine)
        # An active right-marker cell in state "even" accepts immediately.
        active = protocol.initial_state((RIGHT_MARKER, True))
        (choice,) = protocol.options(active, observe(protocol))
        assert choice.state.role == HALTED
        assert choice.state.verdict is True
        assert choice.emit == "ACCEPT"


class TestDecisionDriver:
    def test_parity_words_are_decided_correctly(self):
        machine = parity_lba()
        assert decide_word_on_path(machine, "1010", seed=1)[0] is True
        assert decide_word_on_path(machine, "100", seed=1)[0] is False

    def test_palindromes_are_decided_correctly(self):
        machine = palindrome_lba()
        assert decide_word_on_path(machine, "abba", seed=2)[0] is True
        assert decide_word_on_path(machine, "abab", seed=2)[0] is False

    def test_every_node_reaches_an_output_state(self):
        verdict, result = decide_word_on_path(parity_lba(), "11", seed=3)
        assert verdict is True
        assert len(result.outputs) == result.graph.num_nodes
