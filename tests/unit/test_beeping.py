"""Unit tests for the beeping substrate and the SOP-selection MIS."""

import pytest

from repro.baselines.beeping import (
    BeepingAlgorithm,
    BeepingEngine,
    SOPSelectionMIS,
    sop_selection_mis,
)
from repro.core.errors import OutputNotReachedError
from repro.graphs import complete_graph, cycle_graph, gnp_random_graph, star_graph
from repro.verification import is_maximal_independent_set


class _BeepOnce(BeepingAlgorithm):
    """Everyone beeps in round 0 and outputs whether it heard a neighbour."""

    name = "beep-once"

    def initialize(self, node, degree, num_nodes, rng):
        return {}

    def beeps(self, node, state, round_index, rng):
        return round_index == 0

    def listen(self, node, state, heard_beep, own_beep, round_index, rng):
        return state, heard_beep


class TestBeepingEngine:
    def test_listeners_only_learn_whether_someone_beeped(self):
        graph = star_graph(3)
        result = BeepingEngine(graph, _BeepOnce(), seed=1).run()
        # Everybody has a neighbour in a star, so everybody heard a beep.
        assert all(result.outputs.values())
        assert result.rounds == 1
        assert result.total_beeps == graph.num_nodes

    def test_isolated_nodes_hear_silence(self):
        from repro.graphs import empty_graph

        result = BeepingEngine(empty_graph(3), _BeepOnce(), seed=1).run()
        assert not any(result.outputs.values())

    def test_round_budget_raises(self):
        class Silent(BeepingAlgorithm):
            name = "silent"

            def initialize(self, node, degree, num_nodes, rng):
                return {}

            def beeps(self, node, state, round_index, rng):
                return False

            def listen(self, node, state, heard_beep, own_beep, round_index, rng):
                return state, None

        with pytest.raises(OutputNotReachedError):
            BeepingEngine(star_graph(2), Silent(), seed=1).run(max_rounds=4)

    def test_round_index_accessor(self):
        engine = BeepingEngine(star_graph(2), _BeepOnce(), seed=1)
        engine.step_round()
        assert engine.round_index == 1


class TestSOPSelection:
    @pytest.mark.parametrize("seed", range(5))
    def test_result_is_a_maximal_independent_set(self, seed):
        graph = gnp_random_graph(50, 0.12, seed=seed)
        winners, result = sop_selection_mis(graph, seed=seed)
        assert result.reached_output
        assert is_maximal_independent_set(graph, winners)

    def test_on_a_clique_exactly_one_winner(self):
        winners, _ = sop_selection_mis(complete_graph(12), seed=3)
        assert len(winners) == 1

    def test_on_a_cycle(self):
        graph = cycle_graph(21)
        winners, _ = sop_selection_mis(graph, seed=4)
        assert is_maximal_independent_set(graph, winners)

    def test_probability_ramp_is_capped_at_one_half(self):
        algorithm = SOPSelectionMIS()
        state = algorithm.initialize(0, 3, 1024, rng=None)
        assert algorithm._probability(state, 0) == pytest.approx(1 / 1024)
        assert algorithm._probability(state, 10_000) == pytest.approx(0.5)

    def test_phase_structure_two_rounds(self):
        # Candidacy happens on even rounds, victory announcements on odd ones.
        import random

        algorithm = SOPSelectionMIS()
        state = algorithm.initialize(0, 0, 2, random.Random(1))
        rng = random.Random(1)
        algorithm.beeps(0, state, 0, rng)
        new_state, output = algorithm.listen(0, state, heard_beep=False, own_beep=state["candidate"], round_index=0, rng=rng)
        assert output is None
        if new_state["victorious"]:
            _, output = algorithm.listen(0, new_state, False, True, 1, rng)
            assert output is True
