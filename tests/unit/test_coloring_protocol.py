"""Unit tests for the tree 3-coloring protocol's round-by-round logic."""

import pytest

from repro.core.alphabet import Observation
from repro.protocols.coloring import (
    ACTIVE,
    COLORED,
    COLORING_ALPHABET,
    INITIAL_STATE,
    MSG_ACTIVE,
    MSG_COLOR,
    MSG_DEG,
    MSG_PROPOSE,
    MSG_WAITING,
    WAITING,
    ColoringState,
    TreeColoringProtocol,
    coloring_from_result,
)


def observe(protocol, **counts):
    return Observation(
        protocol.alphabet, {letter: counts.get(letter, 0) for letter in protocol.alphabet}
    )


class TestStaticStructure:
    def setup_method(self):
        self.protocol = TreeColoringProtocol()

    def test_alphabet_and_bounding(self):
        assert set(self.protocol.alphabet.letters) == set(COLORING_ALPHABET)
        assert self.protocol.bounding.value == 3

    def test_initial_state_is_active_round_one(self):
        state = self.protocol.initial_state()
        assert state.mode == ACTIVE
        assert state.next_round == 1

    def test_output_states_are_colored_modes(self):
        colored = ColoringState(mode=COLORED, color=2)
        assert self.protocol.is_output_state(colored)
        assert self.protocol.output_value(colored) == 2
        assert not self.protocol.is_output_state(INITIAL_STATE)

    def test_census_alphabet_size(self):
        assert self.protocol.census().alphabet_size == 12


class TestActiveRounds:
    def setup_method(self):
        self.protocol = TreeColoringProtocol()

    def test_round_one_announces_activity(self):
        (choice,) = self.protocol.options(INITIAL_STATE, observe(self.protocol))
        assert choice.emit == MSG_ACTIVE
        assert choice.state.next_round == 2

    @pytest.mark.parametrize("active_neighbours, expected_letter", [
        (0, MSG_DEG[0]),
        (1, MSG_DEG[1]),
        (2, MSG_DEG[2]),
        (3, MSG_DEG[3]),
        (7, MSG_DEG[3]),  # counts saturate at b = 3
    ])
    def test_round_two_measures_and_announces_the_degree(self, active_neighbours, expected_letter):
        state = ColoringState(mode=ACTIVE, next_round=2)
        observation = observe(self.protocol, ACTIVE=min(active_neighbours, 3))
        (choice,) = self.protocol.options(state, observation)
        assert choice.emit == expected_letter
        assert choice.state.degree == min(active_neighbours, 3)

    def test_round_three_isolated_node_proposes_any_color(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=0)
        options = self.protocol.options(state, observe(self.protocol))
        assert len(options) == 3
        assert {choice.emit for choice in options} == set(MSG_PROPOSE.values())

    def test_round_three_proposals_exclude_neighbour_colors(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=0)
        observation = observe(self.protocol, COLOR1=1, COLOR3=2)
        options = self.protocol.options(state, observation)
        assert [choice.state.proposal for choice in options] == [2]

    def test_round_three_degree_one_with_leaf_partner_proposes(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=1)
        observation = observe(self.protocol, DEG1=1)
        options = self.protocol.options(state, observation)
        assert all(choice.state.proposal is not None for choice in options)

    def test_round_three_degree_one_with_big_neighbour_waits(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=1)
        observation = observe(self.protocol, **{"DEG3+": 1})
        (choice,) = self.protocol.options(state, observation)
        assert choice.state.mode == WAITING
        assert choice.emit == MSG_WAITING

    def test_round_three_waiting_snapshot_records_color_counts(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=1)
        observation = observe(self.protocol, DEG2=1, COLOR2=2)
        (choice,) = self.protocol.options(state, observation)
        assert choice.state.parked_colors == (0, 2, 0)

    def test_round_three_degree_two_with_small_neighbours_proposes(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=2)
        observation = observe(self.protocol, DEG2=2)
        options = self.protocol.options(state, observation)
        assert all(choice.state.proposal is not None for choice in options)

    def test_round_three_degree_two_with_a_big_neighbour_idles(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=2)
        observation = observe(self.protocol, DEG2=1, **{"DEG3+": 1})
        (choice,) = self.protocol.options(state, observation)
        assert choice.state.mode == ACTIVE
        assert choice.state.proposal is None
        assert not choice.transmits()

    def test_round_three_degree_three_never_runs_randcolor(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=3)
        (choice,) = self.protocol.options(state, observe(self.protocol, DEG1=3))
        assert choice.state.proposal is None

    def test_round_three_with_exhausted_palette_retries(self):
        state = ColoringState(mode=ACTIVE, next_round=3, degree=0)
        observation = observe(self.protocol, COLOR1=1, COLOR2=1, COLOR3=1)
        (choice,) = self.protocol.options(state, observation)
        assert choice.state.mode == ACTIVE
        assert choice.state.proposal is None

    def test_round_four_uncontested_proposal_colors_the_node(self):
        state = ColoringState(mode=ACTIVE, next_round=4, degree=1, proposal=2)
        (choice,) = self.protocol.options(state, observe(self.protocol))
        assert choice.state.mode == COLORED
        assert choice.state.color == 2
        assert choice.emit == MSG_COLOR[2]

    def test_round_four_contested_proposal_retries(self):
        state = ColoringState(mode=ACTIVE, next_round=4, degree=1, proposal=2)
        observation = observe(self.protocol, PROPOSE2=1)
        (choice,) = self.protocol.options(state, observation)
        assert choice.state.mode == ACTIVE
        assert choice.state.next_round == 1

    def test_round_four_different_proposal_does_not_block(self):
        state = ColoringState(mode=ACTIVE, next_round=4, degree=1, proposal=2)
        observation = observe(self.protocol, PROPOSE1=1)
        (choice,) = self.protocol.options(state, observation)
        assert choice.state.mode == COLORED

    def test_round_four_without_proposal_starts_a_new_phase(self):
        state = ColoringState(mode=ACTIVE, next_round=4, degree=3)
        (choice,) = self.protocol.options(state, observe(self.protocol))
        assert choice.state.mode == ACTIVE
        assert choice.state.next_round == 1


class TestWaitingAndColored:
    def setup_method(self):
        self.protocol = TreeColoringProtocol()

    def test_colored_nodes_are_silent_sinks(self):
        colored = ColoringState(mode=COLORED, color=1)
        (choice,) = self.protocol.options(colored, observe(self.protocol, ACTIVE=3))
        assert choice.state == colored
        assert not choice.transmits()

    def test_waiting_node_counts_rounds_silently(self):
        waiting = ColoringState(mode=WAITING, next_round=2, parked_colors=(0, 0, 0))
        (choice,) = self.protocol.options(waiting, observe(self.protocol, ACTIVE=2))
        assert choice.state.mode == WAITING
        assert choice.state.next_round == 3
        assert not choice.transmits()

    def test_waiting_node_wakes_when_a_neighbour_colors(self):
        waiting = ColoringState(mode=WAITING, next_round=4, parked_colors=(0, 1, 0))
        observation = observe(self.protocol, COLOR2=2)
        (choice,) = self.protocol.options(waiting, observation)
        assert choice.state.mode == ACTIVE
        assert choice.state.next_round == 1

    def test_waiting_node_ignores_colors_seen_before_parking(self):
        waiting = ColoringState(mode=WAITING, next_round=4, parked_colors=(0, 1, 0))
        observation = observe(self.protocol, COLOR2=1)
        (choice,) = self.protocol.options(waiting, observation)
        assert choice.state.mode == WAITING
        assert choice.state.next_round == 1  # wraps to the next phase

    def test_queried_letters_are_a_subset_of_the_alphabet(self):
        states = [
            INITIAL_STATE,
            ColoringState(mode=ACTIVE, next_round=2),
            ColoringState(mode=ACTIVE, next_round=3, degree=1),
            ColoringState(mode=ACTIVE, next_round=4, degree=1, proposal=1),
            ColoringState(mode=WAITING, next_round=4, parked_colors=(0, 0, 0)),
            ColoringState(mode=COLORED, color=3),
        ]
        for state in states:
            for letter in self.protocol.queried_letters(state):
                assert letter in self.protocol.alphabet


class TestResultExtraction:
    def test_coloring_from_result_drops_none_values(self):
        class FakeResult:
            outputs = {0: 1, 1: None, 2: 3}

        assert coloring_from_result(FakeResult()) == {0: 1, 2: 3}
