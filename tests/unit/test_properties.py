"""Unit tests for structural graph properties."""

import pytest

from repro.core.errors import GraphError
from repro.graphs import (
    Graph,
    bfs_distances,
    binary_tree,
    complete_graph,
    connected_components,
    count_edges_in_subset,
    cycle_graph,
    degree_histogram,
    diameter,
    eccentricity,
    empty_graph,
    good_nodes_mis,
    good_nodes_tree,
    grid_graph,
    is_connected,
    is_forest,
    is_tree,
    path_graph,
    random_tree,
    star_graph,
)


class TestConnectivity:
    def test_connected_components_of_disjoint_edges(self):
        graph = Graph(6, [(0, 1), (2, 3)])
        assert connected_components(graph) == [[0, 1], [2, 3], [4], [5]]

    def test_is_connected_on_standard_graphs(self):
        assert is_connected(path_graph(10))
        assert is_connected(complete_graph(4))
        assert not is_connected(empty_graph(3))
        assert is_connected(empty_graph(1))
        assert is_connected(Graph(0, []))

    def test_forest_and_tree_predicates(self):
        assert is_tree(path_graph(5))
        assert is_forest(Graph(4, [(0, 1), (2, 3)]))
        assert not is_tree(Graph(4, [(0, 1), (2, 3)]))
        assert not is_forest(cycle_graph(4))
        assert not is_tree(cycle_graph(4))


class TestDistances:
    def test_bfs_distances_on_a_path(self):
        distances = bfs_distances(path_graph(5), 0)
        assert distances == [0, 1, 2, 3, 4]

    def test_bfs_unreachable_is_none(self):
        distances = bfs_distances(Graph(3, [(0, 1)]), 0)
        assert distances[2] is None

    def test_bfs_rejects_foreign_source(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 9)

    def test_eccentricity_and_diameter(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2
        assert diameter(path_graph(5)) == 4
        assert diameter(star_graph(6)) == 2
        assert diameter(complete_graph(5)) == 1
        assert diameter(Graph(0, [])) == 0

    def test_diameter_of_grid(self):
        assert diameter(grid_graph(3, 3)) == 4


class TestHistogramsAndSubsets:
    def test_degree_histogram(self):
        histogram = degree_histogram(star_graph(4))
        assert histogram == {4: 1, 1: 4}

    def test_count_edges_in_subset(self):
        graph = cycle_graph(6)
        assert count_edges_in_subset(graph, [0, 1, 2]) == 2
        assert count_edges_in_subset(graph, graph.nodes) == 6
        assert count_edges_in_subset(graph, []) == 0


class TestGoodNodes:
    def test_good_nodes_mis_on_a_star(self):
        # Leaves have their single neighbour (the centre) with a larger
        # degree, so only the centre satisfies the "third of the neighbours"
        # condition... in fact all leaves have degree 1 <= centre degree,
        # making the centre good, while each leaf's single neighbour has a
        # strictly larger degree.
        star = star_graph(6)
        good = good_nodes_mis(star)
        assert 0 in good
        assert all(leaf not in good for leaf in range(1, 7))

    def test_good_nodes_mis_regular_graph_everything_good(self):
        cycle = cycle_graph(8)
        assert good_nodes_mis(cycle) == list(cycle.nodes)

    def test_good_nodes_mis_respects_subset(self):
        star = star_graph(4)
        # Restricting to the leaves makes all of them isolated (degree 0),
        # and isolated nodes are skipped by the definition.
        assert good_nodes_mis(star, subset=range(1, 5)) == []

    def test_good_nodes_tree_fraction_bound(self):
        # Observation 5.2: at least a fifth of the nodes of any tree are good.
        for seed in range(5):
            tree = random_tree(60, seed=seed)
            good = good_nodes_tree(tree)
            assert len(good) >= tree.num_nodes / 5

    def test_good_nodes_tree_on_a_path(self):
        path = path_graph(6)
        assert good_nodes_tree(path) == list(path.nodes)

    def test_good_nodes_tree_on_binary_tree_leaves(self):
        tree = binary_tree(15)
        good = set(good_nodes_tree(tree))
        leaves = {v for v in tree.nodes if tree.degree(v) == 1}
        assert leaves <= good

    def test_good_nodes_tree_subset_uses_induced_degrees(self):
        star = star_graph(5)
        # Without the centre every leaf is isolated, hence good.
        assert good_nodes_tree(star, subset=range(1, 6)) == list(range(1, 6))
