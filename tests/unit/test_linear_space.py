"""Unit tests for the linear-space nFSM simulation (Lemma 6.1)."""

from repro.automata.nfsm_to_lba import (
    NO_EMISSION,
    LinearSpaceNetworkSimulator,
    simulate_with_linear_space,
)
from repro.graphs import gnp_random_graph, path_graph, star_graph
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import is_maximal_independent_set


class TestTapeLayout:
    def test_tape_holds_two_cells_per_node_plus_one_per_port(self):
        graph = star_graph(3)
        simulator = LinearSpaceNetworkSimulator(graph, MISProtocol(), seed=0)
        expected = 2 * graph.num_nodes + sum(graph.degree(v) for v in graph.nodes)
        assert len(simulator.tape) == expected

    def test_pending_cells_start_empty(self):
        simulator = LinearSpaceNetworkSimulator(path_graph(3), MISProtocol(), seed=0)
        assert all(
            simulator.tape[simulator._pending_cell(node)] == NO_EMISSION
            for node in range(3)
        )

    def test_space_report_is_constant_per_entry(self):
        graph = gnp_random_graph(30, 0.2, seed=1)
        simulator = LinearSpaceNetworkSimulator(graph, MISProtocol(), seed=0)
        report = simulator.space_report()
        assert report.extra_cells == report.state_cells + report.pending_cells + report.port_cells
        assert report.extra_cells_per_entry <= 2.0

    def test_tape_never_grows_during_a_run(self):
        graph = gnp_random_graph(20, 0.2, seed=2)
        simulator = LinearSpaceNetworkSimulator(graph, MISProtocol(), seed=3)
        initial_length = len(simulator.tape)
        simulator.run(max_rounds=200)
        assert len(simulator.tape) == initial_length


class TestFaithfulness:
    def test_broadcast_simulation_matches_the_engine_exactly(self):
        graph = path_graph(7)
        inputs = broadcast_inputs(0)
        reference = run_synchronous(graph, BroadcastProtocol(), seed=5, inputs=inputs)
        simulated = simulate_with_linear_space(graph, BroadcastProtocol(), seed=5, inputs=inputs)
        assert simulated.final_states == reference.final_states
        assert simulated.rounds == reference.rounds
        assert simulated.outputs == reference.outputs

    def test_randomized_mis_simulation_matches_with_the_same_seed(self):
        graph = gnp_random_graph(25, 0.2, seed=8)
        reference = run_synchronous(graph, MISProtocol(), seed=13)
        simulated = simulate_with_linear_space(graph, MISProtocol(), seed=13)
        assert simulated.final_states == reference.final_states
        assert simulated.rounds == reference.rounds

    def test_simulated_mis_is_valid(self):
        graph = gnp_random_graph(25, 0.2, seed=9)
        simulated = simulate_with_linear_space(graph, MISProtocol(), seed=21)
        assert simulated.reached_output
        assert is_maximal_independent_set(graph, mis_from_result(simulated))

    def test_metadata_carries_the_space_report(self):
        result = simulate_with_linear_space(path_graph(4), MISProtocol(), seed=1)
        assert result.metadata["space_report"].num_nodes == 4
