"""Unit tests for the synchronizer compiler (Theorem 3.1)."""

import pytest

from repro.compilers.synchronizer import PAUSE, SIMULATE, SynchronizedProtocol, synchronize
from repro.core.errors import CompilationError
from repro.graphs import path_graph
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import DOWN1, MISProtocol
from repro.scheduling.adversary import UniformRandomAdversary
from repro.scheduling.async_engine import run_asynchronous


class TestCompiledStructure:
    def setup_method(self):
        self.base = MISProtocol()
        self.compiled = synchronize(self.base)

    def test_only_protocol_objects_are_accepted(self):
        with pytest.raises(CompilationError):
            SynchronizedProtocol("not a protocol")

    def test_alphabet_is_sigma_squared_times_three_trits(self):
        base_size = len(self.base.alphabet)
        assert len(self.compiled.alphabet) == 3 * base_size * base_size

    def test_initial_letter_encodes_the_virtual_round_zero(self):
        sigma0 = self.base.initial_letter
        assert self.compiled.initial_letter == (sigma0, sigma0, 0)

    def test_bounding_parameter_is_unchanged(self):
        assert self.compiled.bounding == self.base.bounding

    def test_initial_state_starts_round_one_in_the_pausing_feature(self):
        tag, base_state, trit, prev_port, index = self.compiled.initial_state()
        assert tag == PAUSE
        assert base_state == DOWN1
        assert trit == 1
        assert prev_port == self.base.initial_letter
        assert index == 0

    def test_output_states_follow_the_base_protocol(self):
        winning = (PAUSE, "WIN", 2, "WIN", 0)
        active = (PAUSE, "UP0", 2, "UP0", 0)
        assert self.compiled.is_output_state(winning)
        assert self.compiled.output_value(winning) is True
        assert not self.compiled.is_output_state(active)

    def test_base_round_of_reports_the_trit(self):
        assert self.compiled.base_round_of((PAUSE, "UP0", 2, "UP0", 0)) == 2

    def test_census_alphabet_is_constant(self):
        census = self.compiled.census()
        assert census.alphabet_size == 147
        assert census.is_constant_size()


class TestPausingFeature:
    def setup_method(self):
        self.base = MISProtocol()
        self.compiled = synchronize(self.base)
        self.state = self.compiled.initial_state()

    def test_pause_queries_a_dirty_letter_of_the_previous_previous_round(self):
        letter = self.compiled.query_letter(self.state)
        prev, cur, trit = letter
        assert trit == (1 - 2) % 3  # dirty trit for round 1

    def test_pause_stalls_while_the_dirty_letter_is_present(self):
        (choice,) = self.compiled.options(self.state, 1)
        assert choice.state == self.state
        assert not choice.transmits()

    def test_pause_advances_when_the_dirty_letter_is_absent(self):
        (choice,) = self.compiled.options(self.state, 0)
        assert choice.state[0] == PAUSE
        assert choice.state[4] == 1
        assert not choice.transmits()

    def test_pause_eventually_enters_the_simulating_feature(self):
        state = self.state
        dirty_letters = len(self.base.alphabet) ** 2
        for _ in range(dirty_letters):
            (choice,) = self.compiled.options(state, 0)
            state = choice.state
        assert state[0] == SIMULATE


class TestSimulatingFeature:
    def setup_method(self):
        self.base = BroadcastProtocol()
        self.compiled = synchronize(self.base)

    def _skip_pausing(self, state):
        while state[0] == PAUSE:
            (choice,) = self.compiled.options(state, 0)
            state = choice.state
        return state

    def test_simulation_applies_the_base_transition_and_transmits(self):
        state = self._skip_pausing(self.compiled.initial_state("source"))
        # The broadcast SOURCE state queries the TOKEN letter; feed zero
        # counts through all passes until the base transition fires.
        emitted = None
        for _ in range(1000):
            (choice,) = self.compiled.options(state, 0)
            state = choice.state
            if choice.transmits():
                emitted = choice.emit
                break
        assert emitted is not None, "the simulating feature never applied the base transition"
        prev, cur, trit = emitted
        assert prev == "QUIET"      # the underlying port content before round 1
        assert cur == "TOKEN"       # the source transmits the token in round 1
        assert trit == 1
        assert state[0] == PAUSE    # the next round's pausing feature
        assert state[1] == "INFORMED"
        assert state[2] == 2        # trit advances

    def test_changed_gamma_counts_restart_the_simulating_feature(self):
        state = self._skip_pausing(self.compiled.initial_state(None))
        # Pass 1 sees a count of 1 for the first Γ letter, pass 3 sees 0 —
        # the feature must restart rather than commit a corrupted observation.
        alphabet_size = len(self.base.alphabet)
        # Pass 1 (first letter sees 1, rest 0).
        (choice,) = self.compiled.options(state, 1)
        state = choice.state
        for _ in range(alphabet_size - 1):
            (choice,) = self.compiled.options(state, 0)
            state = choice.state
        # Pass 2: all zero.
        for _ in range(alphabet_size):
            (choice,) = self.compiled.options(state, 0)
            state = choice.state
        # Pass 3: all zero -> mismatch with pass 1.
        for _ in range(alphabet_size):
            (choice,) = self.compiled.options(state, 0)
            state = choice.state
        assert state[0] == SIMULATE
        assert state[4] == 1          # back to pass 1
        assert state[8] == ()         # accumulators cleared


class TestEndToEnd:
    def test_synchronized_broadcast_is_correct_under_an_adversary(self):
        graph = path_graph(5)
        compiled = synchronize(BroadcastProtocol())
        result = run_asynchronous(
            graph,
            compiled,
            inputs=broadcast_inputs(0),
            seed=4,
            adversary=UniformRandomAdversary(),
            adversary_seed=11,
        )
        assert result.reached_output
        assert all(result.outputs[node] for node in graph.nodes)
