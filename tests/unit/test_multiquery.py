"""Unit tests for the multi-letter-query lowering (Theorem 3.4)."""

import pytest

from repro.compilers.multiquery import SingleQueryProtocol, lower_to_single_query
from repro.core.errors import CompilationError
from repro.graphs import gnp_random_graph
from repro.protocols.broadcast import BroadcastProtocol
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import is_maximal_independent_set


class TestLowering:
    def setup_method(self):
        self.base = MISProtocol()
        self.lowered = SingleQueryProtocol(self.base)

    def test_only_extended_protocols_are_accepted(self):
        with pytest.raises(CompilationError):
            SingleQueryProtocol(BroadcastProtocol())

    def test_lower_to_single_query_is_identity_on_strict_protocols(self):
        strict = BroadcastProtocol()
        assert lower_to_single_query(strict) is strict

    def test_alphabet_and_bounding_are_preserved(self):
        assert self.lowered.alphabet == self.base.alphabet
        assert self.lowered.bounding == self.base.bounding
        assert self.lowered.initial_letter == self.base.initial_letter

    def test_subround_count_equals_the_alphabet_size(self):
        assert self.lowered.subrounds_per_round() == len(self.base.alphabet)

    def test_initial_state_wraps_the_base_state(self):
        base_state, subround, collected = self.lowered.initial_state()
        assert base_state == self.base.initial_state()
        assert subround == 0
        assert collected == ()

    def test_query_letter_follows_the_subround_index(self):
        for index, letter in enumerate(self.base.alphabet):
            state = ("DOWN1", index, (0,) * index)
            assert self.lowered.query_letter(state) == letter

    def test_intermediate_subrounds_collect_counts_silently(self):
        state = self.lowered.initial_state()
        (choice,) = self.lowered.options(state, 1)
        assert not choice.transmits()
        assert choice.state[1] == 1          # next subround
        assert choice.state[2] == (1,)       # collected count

    def test_last_subround_applies_the_base_transition(self):
        # Feed an all-zero observation: a DOWN1 node must move to UP0 and
        # transmit the UP0 letter, exactly like the base protocol.
        state = self.lowered.initial_state()
        for _ in range(len(self.base.alphabet) - 1):
            (choice,) = self.lowered.options(state, 0)
            state = choice.state
        (final,) = self.lowered.options(state, 0)
        assert final.state[0] == "UP0"
        assert final.emit == "UP0"
        assert final.state[1] == 0 and final.state[2] == ()

    def test_output_states_delegate_to_the_base(self):
        assert self.lowered.is_output_state(("WIN", 0, ()))
        assert self.lowered.output_value(("WIN", 0, ())) is True
        assert not self.lowered.is_output_state(("UP1", 3, (0, 0, 0)))

    def test_census_remains_constant_size(self):
        assert self.lowered.census().is_constant_size()


class TestLoweredExecution:
    def test_lowered_mis_is_correct_and_costs_sigma_times_more(self):
        graph = gnp_random_graph(24, 0.2, seed=5)
        base_result = run_synchronous(graph, MISProtocol(), seed=9)
        lowered_result = run_synchronous(
            graph, SingleQueryProtocol(MISProtocol()), seed=9, max_rounds=200_000
        )
        assert is_maximal_independent_set(graph, mis_from_result(lowered_result))
        assert lowered_result.rounds == base_result.rounds * len(MISProtocol().alphabet)
