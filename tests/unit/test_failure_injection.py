"""Failure-injection tests: malformed protocols and hostile schedules.

The engines must fail loudly (with library exceptions) rather than silently
mis-execute when handed a protocol that violates the model's contract.
"""

import pytest

from repro.core.alphabet import EPSILON
from repro.core.errors import ExecutionError, ProtocolSpecificationError
from repro.core.protocol import ExtendedProtocol, Protocol, TransitionChoice
from repro.graphs import path_graph
from repro.scheduling.adversary import AdversaryPolicy, AdversarySchedule
from repro.scheduling.async_engine import AsynchronousEngine, run_asynchronous
from repro.scheduling.sync_engine import run_synchronous


class _EmptyOptionsProtocol(Protocol):
    """A broken protocol whose transition relation is empty."""

    def __init__(self):
        super().__init__(
            name="broken-empty-options",
            alphabet=["X"],
            initial_letter="X",
            bounding=1,
            input_states=["s"],
        )

    def query_letter(self, state):
        return "X"

    def options(self, state, count):
        return ()


class _EmptyOptionsExtended(ExtendedProtocol):
    def __init__(self):
        super().__init__(
            name="broken-empty-extended",
            alphabet=["X"],
            initial_letter="X",
            bounding=1,
            input_states=["s"],
        )

    def options(self, state, observation):
        return ()


class _NeverTerminatingProtocol(Protocol):
    """A legal protocol that simply never reaches an output configuration."""

    def __init__(self):
        super().__init__(
            name="never-terminating",
            alphabet=["X"],
            initial_letter="X",
            bounding=1,
            input_states=["s"],
        )

    def query_letter(self, state):
        return "X"

    def options(self, state, count):
        return (TransitionChoice("s", EPSILON),)


class TestBrokenProtocols:
    def test_sync_engine_rejects_empty_option_sets(self):
        with pytest.raises(ProtocolSpecificationError):
            run_synchronous(path_graph(3), _EmptyOptionsProtocol(), seed=1, max_rounds=5)

    def test_sync_engine_rejects_empty_extended_option_sets(self):
        with pytest.raises(ProtocolSpecificationError):
            run_synchronous(path_graph(3), _EmptyOptionsExtended(), seed=1, max_rounds=5)

    def test_async_engine_rejects_empty_option_sets(self):
        with pytest.raises(ProtocolSpecificationError):
            run_asynchronous(
                path_graph(3), _EmptyOptionsProtocol(), seed=1, max_events=50,
                raise_on_timeout=False,
            )

    def test_non_terminating_protocol_hits_the_budget_gracefully(self):
        result = run_synchronous(
            path_graph(3), _NeverTerminatingProtocol(), seed=1, max_rounds=10,
            raise_on_timeout=False,
        )
        assert not result.reached_output
        assert result.outputs == {}


class _NonPositiveAdversary(AdversaryPolicy):
    name = "non-positive"

    def start(self, graph, rng):
        class Schedule(AdversarySchedule):
            def step_length(self, node, step):
                return 0.0

            def delivery_delay(self, sender, step, receiver):
                return 1.0

        return Schedule()


class TestHostileSchedules:
    def test_zero_step_lengths_do_not_crash_but_never_advance_time(self):
        # A zero step length violates the model (L must be positive); the
        # functional policies guard against it, and a hand-rolled schedule
        # that returns zero simply freezes the adversary clock — the engine
        # still terminates by the event budget without corrupting state.
        engine = AsynchronousEngine(
            path_graph(2),
            _NeverTerminatingProtocol(),
            adversary=_NonPositiveAdversary(),
            seed=1,
        )
        result = engine.run(max_events=100, raise_on_timeout=False)
        assert not result.reached_output
        assert result.elapsed_time == 0.0

    def test_functional_schedules_validate_positivity(self):
        import random

        from repro.scheduling.adversary import UniformRandomAdversary, _FunctionalSchedule

        schedule = _FunctionalSchedule(lambda v, t: -1.0, lambda v, t, u: 1.0)
        with pytest.raises(ExecutionError):
            schedule.step_length(0, 1)
        schedule = _FunctionalSchedule(lambda v, t: 1.0, lambda v, t, u: 0.0)
        with pytest.raises(ExecutionError):
            schedule.delivery_delay(0, 1, 1)
        # And the shipped policies only ever produce valid values.
        shipped = UniformRandomAdversary().start(path_graph(3), random.Random(1))
        assert shipped.step_length(0, 1) > 0
