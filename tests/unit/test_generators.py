"""Unit tests for the graph generators."""

import random

import pytest

from repro.core.errors import GraphError
from repro.graphs import (
    GRAPH_FAMILIES,
    binary_tree,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    is_connected,
    is_tree,
    path_graph,
    random_bipartite_graph,
    random_connected_gnp,
    random_regular_graph,
    random_tree,
    star_graph,
    tree_from_pruefer,
)


class TestDeterministicFamilies:
    def test_empty_graph(self):
        graph = empty_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 0

    def test_complete_graph_edge_count(self):
        assert complete_graph(6).num_edges == 15

    def test_path_graph_structure(self):
        path = path_graph(5)
        assert path.num_edges == 4
        assert path.degree(0) == 1
        assert path.degree(2) == 2
        assert is_tree(path)

    def test_single_node_path(self):
        assert path_graph(1).num_edges == 0

    def test_cycle_graph_is_2_regular(self):
        cycle = cycle_graph(7)
        assert all(cycle.degree(v) == 2 for v in cycle.nodes)
        assert cycle.num_edges == 7

    def test_cycle_needs_three_nodes(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_graph_degrees(self):
        star = star_graph(9)
        assert star.degree(0) == 9
        assert all(star.degree(v) == 1 for v in range(1, 10))

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(3, 4)
        assert graph.num_nodes == 7
        assert graph.num_edges == 12

    def test_grid_graph(self):
        grid = grid_graph(3, 4)
        assert grid.num_nodes == 12
        assert grid.num_edges == 3 * 3 + 2 * 4
        assert is_connected(grid)

    def test_binary_tree_is_a_tree(self):
        tree = binary_tree(15)
        assert is_tree(tree)
        assert tree.max_degree() == 3

    def test_caterpillar_is_a_tree(self):
        caterpillar = caterpillar_graph(5, 2)
        assert caterpillar.num_nodes == 5 + 10
        assert is_tree(caterpillar)


class TestRandomFamilies:
    def test_gnp_probability_bounds_checked(self):
        with pytest.raises(GraphError):
            gnp_random_graph(5, 1.5)

    def test_gnp_extremes(self):
        assert gnp_random_graph(6, 0.0, seed=1).num_edges == 0
        assert gnp_random_graph(6, 1.0, seed=1).num_edges == 15

    def test_gnp_is_seed_deterministic(self):
        assert gnp_random_graph(30, 0.2, seed=5) == gnp_random_graph(30, 0.2, seed=5)
        assert gnp_random_graph(30, 0.2, seed=5) != gnp_random_graph(30, 0.2, seed=6)

    def test_gnp_accepts_random_instance(self):
        rng = random.Random(3)
        graph = gnp_random_graph(10, 0.3, rng)
        assert graph.num_nodes == 10

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 57])
    def test_random_tree_is_a_tree(self, n):
        assert is_tree(random_tree(n, seed=n))

    def test_random_tree_rejects_zero_nodes(self):
        with pytest.raises(GraphError):
            random_tree(0)

    def test_random_tree_is_seed_deterministic(self):
        assert random_tree(40, seed=9) == random_tree(40, seed=9)

    def test_tree_from_pruefer_known_sequence(self):
        # Prüfer sequence (3, 3, 3, 4) encodes a specific 6-node tree.
        tree = tree_from_pruefer([3, 3, 3, 4])
        assert is_tree(tree)
        assert tree.degree(3) == 4

    def test_tree_from_pruefer_rejects_bad_entries(self):
        with pytest.raises(GraphError):
            tree_from_pruefer([7])

    def test_random_bipartite_has_no_intra_side_edges(self):
        graph = random_bipartite_graph(5, 6, 0.5, seed=2)
        for u, v in graph.edges:
            assert (u < 5) != (v < 5)

    def test_random_regular_graph_degrees(self):
        graph = random_regular_graph(12, 3, seed=4)
        assert all(graph.degree(v) == 3 for v in graph.nodes)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_random_regular_degree_bound(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)

    def test_random_connected_gnp_is_connected(self):
        graph = random_connected_gnp(40, 0.02, seed=11)
        assert is_connected(graph)


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(GRAPH_FAMILIES))
    def test_every_registered_family_builds(self, name):
        graph = GRAPH_FAMILIES[name](16, 3)
        assert graph.num_nodes >= 1
