"""Unit tests for the statistics toolbox."""

import math

import pytest

from repro.analysis.statistics import (
    best_growth_fit,
    confidence_interval,
    doubling_ratios,
    fit_growth,
    least_squares,
    mean,
    median,
    summarize,
)


class TestSummaries:
    def test_summarize_basic_sample(self):
        stats = summarize([1, 2, 3, 4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1 and stats.maximum == 4

    def test_summarize_odd_length_median(self):
        assert summarize([5, 1, 3]).median == 3

    def test_summarize_rejects_empty_input(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mean_and_median_helpers(self):
        assert mean([2, 4, 6]) == pytest.approx(4)
        assert median([9, 1, 5]) == 5

    def test_confidence_interval_contains_the_mean(self):
        low, high = confidence_interval([10, 12, 8, 11, 9])
        assert low < 10 < high

    def test_confidence_interval_of_singleton_is_degenerate(self):
        assert confidence_interval([3.0]) == (3.0, 3.0)


class TestLeastSquares:
    def test_perfect_line(self):
        slope, intercept, r_squared = least_squares([1, 2, 3], [3, 5, 7])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r_squared == pytest.approx(1.0)

    def test_constant_data_has_zero_slope(self):
        slope, intercept, r_squared = least_squares([1, 1, 1], [4, 4, 4])
        assert slope == 0.0
        assert r_squared == pytest.approx(1.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            least_squares([1], [1])


class TestGrowthFits:
    def test_fit_growth_recovers_a_logarithmic_series(self):
        sizes = [2**k for k in range(4, 11)]
        costs = [5 * math.log2(n) + 3 for n in sizes]
        fit = fit_growth(sizes, costs, "log n")
        assert fit.slope == pytest.approx(5, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_best_growth_fit_identifies_log_squared(self):
        sizes = [2**k for k in range(4, 12)]
        costs = [2 * math.log2(n) ** 2 for n in sizes]
        assert best_growth_fit(sizes, costs).label == "log^2 n"

    def test_best_growth_fit_identifies_linear(self):
        sizes = [2**k for k in range(4, 12)]
        costs = [3 * n + 7 for n in sizes]
        assert best_growth_fit(sizes, costs).label == "n"

    def test_predict(self):
        fit = fit_growth([10, 100, 1000], [1, 2, 3], "log n")
        assert fit.predict(0) == pytest.approx(fit.intercept)


class TestDoublingRatios:
    def test_linear_growth_gives_ratio_two(self):
        ratios = doubling_ratios([16, 32, 64], [16, 32, 64])
        assert all(ratio == pytest.approx(2.0) for ratio in ratios)

    def test_logarithmic_growth_approaches_one(self):
        sizes = [2**k for k in range(4, 12)]
        costs = [math.log2(n) for n in sizes]
        ratios = doubling_ratios(sizes, costs)
        assert ratios[-1] < 1.2

    def test_unsorted_input_is_sorted_first(self):
        assert doubling_ratios([64, 16, 32], [64, 16, 32]) == [pytest.approx(2.0)] * 2
