"""Unit tests for the adversarial timing policies."""

import random

import pytest

from repro.core.errors import ExecutionError
from repro.graphs import complete_graph, star_graph
from repro.scheduling.adversary import (
    BurstyAdversary,
    ExponentialAdversary,
    SkewedRatesAdversary,
    SynchronousAdversary,
    TargetedLaggardAdversary,
    UniformRandomAdversary,
    default_adversary_suite,
)


@pytest.mark.parametrize("policy", default_adversary_suite(), ids=lambda p: p.name)
class TestEveryPolicy:
    def test_all_parameters_are_positive_and_finite(self, policy):
        graph = complete_graph(6)
        schedule = policy.start(graph, random.Random(1))
        for node in graph.nodes:
            for step in range(1, 20):
                length = schedule.step_length(node, step)
                assert 0 < length < float("inf")
                for neighbour in graph.neighbors(node):
                    delay = schedule.delivery_delay(node, step, neighbour)
                    assert 0 < delay < float("inf")

    def test_policy_repr_mentions_its_name(self, policy):
        assert policy.name in repr(policy)


class TestSynchronousAdversary:
    def test_everything_is_one_time_unit(self):
        schedule = SynchronousAdversary().start(complete_graph(3), random.Random(0))
        assert schedule.step_length(0, 1) == 1.0
        assert schedule.delivery_delay(0, 1, 1) == 1.0


class TestUniformRandomAdversary:
    def test_values_respect_bounds(self):
        policy = UniformRandomAdversary(low=2.0, high=3.0)
        schedule = policy.start(complete_graph(4), random.Random(7))
        samples = [schedule.step_length(0, t) for t in range(50)]
        assert all(2.0 <= value <= 3.0 for value in samples)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ExecutionError):
            UniformRandomAdversary(low=0.0, high=1.0)
        with pytest.raises(ExecutionError):
            UniformRandomAdversary(low=3.0, high=1.0)


class TestExponentialAdversary:
    def test_floor_keeps_values_positive(self):
        policy = ExponentialAdversary(mean_step=0.01, floor=0.5)
        schedule = policy.start(complete_graph(3), random.Random(3))
        assert all(schedule.step_length(0, t) >= 0.5 for t in range(30))


class TestSkewedRatesAdversary:
    def test_slow_nodes_are_actually_slower(self):
        policy = SkewedRatesAdversary(slow_fraction=0.5, slow_factor=20.0)
        graph = complete_graph(30)
        schedule = policy.start(graph, random.Random(5))
        means = []
        for node in graph.nodes:
            samples = [schedule.step_length(node, t) for t in range(30)]
            means.append(sum(samples) / len(samples))
        assert max(means) > 5 * min(means)

    def test_parameter_validation(self):
        with pytest.raises(ExecutionError):
            SkewedRatesAdversary(slow_fraction=2.0)
        with pytest.raises(ExecutionError):
            SkewedRatesAdversary(slow_factor=0.5)


class TestBurstyAdversary:
    def test_period_validation(self):
        with pytest.raises(ExecutionError):
            BurstyAdversary(period=0)

    def test_alternation_produces_both_regimes(self):
        policy = BurstyAdversary(period=4, slow_factor=10.0)
        schedule = policy.start(complete_graph(2), random.Random(2))
        samples = [schedule.step_length(0, t) for t in range(40)]
        assert max(samples) > 4 * min(samples)


class TestTargetedLaggardAdversary:
    def test_victims_are_the_highest_degree_nodes(self):
        policy = TargetedLaggardAdversary(num_victims=1, slow_factor=50.0)
        star = star_graph(8)
        schedule = policy.start(star, random.Random(9))
        centre_mean = sum(schedule.step_length(0, t) for t in range(20)) / 20
        leaf_mean = sum(schedule.step_length(3, t) for t in range(20)) / 20
        assert centre_mean > 10 * leaf_mean

    def test_needs_at_least_one_victim(self):
        with pytest.raises(ExecutionError):
            TargetedLaggardAdversary(num_victims=0)


class TestSuite:
    def test_default_suite_contains_all_six_policies(self):
        names = {policy.name for policy in default_adversary_suite()}
        assert names == {
            "synchronous",
            "uniform",
            "exponential",
            "skewed-rates",
            "bursty",
            "targeted-laggard",
        }
