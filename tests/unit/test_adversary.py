"""Unit tests for the adversarial timing policies."""

import random

import pytest

from repro.core.errors import ExecutionError
from repro.graphs import complete_graph, star_graph
from repro.scheduling.adversary import (
    BurstyAdversary,
    ExponentialAdversary,
    SkewedRatesAdversary,
    SynchronousAdversary,
    TargetedLaggardAdversary,
    UniformRandomAdversary,
    default_adversary_suite,
)


@pytest.mark.parametrize("policy", default_adversary_suite(), ids=lambda p: p.name)
class TestEveryPolicy:
    def test_all_parameters_are_positive_and_finite(self, policy):
        graph = complete_graph(6)
        schedule = policy.start(graph, random.Random(1))
        for node in graph.nodes:
            for step in range(1, 20):
                length = schedule.step_length(node, step)
                assert 0 < length < float("inf")
                for neighbour in graph.neighbors(node):
                    delay = schedule.delivery_delay(node, step, neighbour)
                    assert 0 < delay < float("inf")

    def test_policy_repr_mentions_its_name(self, policy):
        assert policy.name in repr(policy)


class TestSynchronousAdversary:
    def test_everything_is_one_time_unit(self):
        schedule = SynchronousAdversary().start(complete_graph(3), random.Random(0))
        assert schedule.step_length(0, 1) == 1.0
        assert schedule.delivery_delay(0, 1, 1) == 1.0


class TestUniformRandomAdversary:
    def test_values_respect_bounds(self):
        policy = UniformRandomAdversary(low=2.0, high=3.0)
        schedule = policy.start(complete_graph(4), random.Random(7))
        samples = [schedule.step_length(0, t) for t in range(50)]
        assert all(2.0 <= value <= 3.0 for value in samples)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ExecutionError):
            UniformRandomAdversary(low=0.0, high=1.0)
        with pytest.raises(ExecutionError):
            UniformRandomAdversary(low=3.0, high=1.0)


class TestExponentialAdversary:
    def test_floor_keeps_values_positive(self):
        policy = ExponentialAdversary(mean_step=0.01, floor=0.5)
        schedule = policy.start(complete_graph(3), random.Random(3))
        assert all(schedule.step_length(0, t) >= 0.5 for t in range(30))


class TestSkewedRatesAdversary:
    def test_slow_nodes_are_actually_slower(self):
        policy = SkewedRatesAdversary(slow_fraction=0.5, slow_factor=20.0)
        graph = complete_graph(30)
        schedule = policy.start(graph, random.Random(5))
        means = []
        for node in graph.nodes:
            samples = [schedule.step_length(node, t) for t in range(30)]
            means.append(sum(samples) / len(samples))
        assert max(means) > 5 * min(means)

    def test_parameter_validation(self):
        with pytest.raises(ExecutionError):
            SkewedRatesAdversary(slow_fraction=2.0)
        with pytest.raises(ExecutionError):
            SkewedRatesAdversary(slow_factor=0.5)


class TestBurstyAdversary:
    def test_period_validation(self):
        with pytest.raises(ExecutionError):
            BurstyAdversary(period=0)

    def test_sub_unit_slow_factor_rejected(self):
        # A factor below 1 would undercut the schedule's static delay lower
        # bound, silently breaking async backend parity.
        with pytest.raises(ExecutionError):
            BurstyAdversary(slow_factor=0.5)

    def test_alternation_produces_both_regimes(self):
        policy = BurstyAdversary(period=4, slow_factor=10.0)
        schedule = policy.start(complete_graph(2), random.Random(2))
        samples = [schedule.step_length(0, t) for t in range(40)]
        assert max(samples) > 4 * min(samples)


class TestTargetedLaggardAdversary:
    def test_victims_are_the_highest_degree_nodes(self):
        policy = TargetedLaggardAdversary(num_victims=1, slow_factor=50.0)
        star = star_graph(8)
        schedule = policy.start(star, random.Random(9))
        centre_mean = sum(schedule.step_length(0, t) for t in range(20)) / 20
        leaf_mean = sum(schedule.step_length(3, t) for t in range(20)) / 20
        assert centre_mean > 10 * leaf_mean

    def test_needs_at_least_one_victim(self):
        with pytest.raises(ExecutionError):
            TargetedLaggardAdversary(num_victims=0)

    def test_sub_unit_slow_factor_rejected(self):
        with pytest.raises(ExecutionError):
            TargetedLaggardAdversary(slow_factor=0.25)


class TestSuite:
    def test_default_suite_contains_all_six_policies(self):
        names = {policy.name for policy in default_adversary_suite()}
        assert names == {
            "synchronous",
            "uniform",
            "exponential",
            "skewed-rates",
            "bursty",
            "targeted-laggard",
        }

    def test_default_suite_is_deterministic_under_a_fixed_seed(self):
        """Re-binding any suite policy with an equally seeded rng reproduces
        the schedule draw-for-draw (experiments depend on this)."""
        np = pytest.importorskip("numpy")
        graph = complete_graph(5)
        nodes = np.repeat(np.arange(5), 10)
        steps = np.tile(np.arange(1, 11), 5)
        for policy_a, policy_b in zip(default_adversary_suite(), default_adversary_suite()):
            schedule_a = policy_a.start(graph, random.Random(77))
            schedule_b = policy_b.start(graph, random.Random(77))
            assert np.array_equal(
                schedule_a.step_lengths(nodes, steps),
                schedule_b.step_lengths(nodes, steps),
            )
            receivers = (nodes + 1) % 5
            assert np.array_equal(
                schedule_a.delivery_delays(nodes, steps, receivers),
                schedule_b.delivery_delays(nodes, steps, receivers),
            )


class TestExponentialBaseline:
    """Named baseline for the future time-warp optimisation (ROADMAP).

    The exponential policy is the one shipped adversary stuck at ~1×
    vectorized/sharded speedup: its delay floor is the only safe lower
    bound on in-flight deliveries, so the time-bucket margin collapses to
    the floor and a bucket rarely holds more than one node step.  Pin
    (a) bitwise scalar-vs-batch equality of the draws and (b) the
    bucket-size bound itself, so any future lookahead/time-warp change
    has a regression anchor to beat.
    """

    def test_scalar_and_batch_draws_agree_bitwise(self):
        np = pytest.importorskip("numpy")
        schedule = ExponentialAdversary().start(complete_graph(16), random.Random(29))
        assert schedule.batch_capable
        nodes = np.repeat(np.arange(16), 40)
        steps = np.tile(np.arange(1, 41), 16)
        receivers = (nodes + 5) % 16
        lengths = schedule.step_lengths(nodes, steps)
        delays = schedule.delivery_delays(nodes, steps, receivers)
        assert all(
            schedule.step_length(int(v), int(t)) == float(value)
            for v, t, value in zip(nodes, steps, lengths)
        )
        assert all(
            schedule.delivery_delay(int(v), int(t), int(u)) == float(value)
            for v, t, u, value in zip(nodes, steps, receivers, delays)
        )

    def test_delay_floor_collapses_the_bucket_margin(self):
        np = pytest.importorskip("numpy")
        policy = ExponentialAdversary()
        schedule = policy.start(complete_graph(64), random.Random(7))
        # The floor is the only safe margin once messages are in flight.
        assert schedule.delay_lower_bound() == policy.floor == 1e-3
        # First safe bucket of a 64-node run: horizon = min(next_time +
        # margin).  With the default floor, exactly one node makes the
        # bucket — the engine batches nothing and runs effectively
        # serially.  The synchronous policy under the same construction
        # admits the whole network per bucket.
        n = 64
        next_time = schedule.step_lengths(
            np.arange(n), np.ones(n, dtype=np.int64)
        )
        margin = np.full(n, schedule.delay_lower_bound())
        horizon = float((next_time + margin).min())
        assert int((next_time < horizon).sum()) == 1
        sync = SynchronousAdversary().start(complete_graph(64), random.Random(7))
        sync_next = sync.step_lengths(np.arange(n), np.ones(n, dtype=np.int64))
        sync_margin = np.full(n, sync.delay_lower_bound())
        sync_horizon = float((sync_next + sync_margin).min())
        assert int((sync_next < sync_horizon).sum()) == n


@pytest.mark.parametrize("policy", default_adversary_suite(), ids=lambda p: p.name)
class TestBatchSampling:
    """The batch interface of every shipped policy (satellite of PR 2)."""

    def _schedule(self, policy):
        pytest.importorskip("numpy")
        return policy.start(complete_graph(8), random.Random(3))

    def test_scalar_and_batch_sampling_agree_bitwise(self, policy):
        import numpy as np

        schedule = self._schedule(policy)
        assert schedule.batch_capable
        nodes = np.repeat(np.arange(8), 25)
        steps = np.tile(np.arange(1, 26), 8)
        lengths = schedule.step_lengths(nodes, steps)
        assert all(
            schedule.step_length(int(v), int(t)) == float(value)
            for v, t, value in zip(nodes, steps, lengths)
        )
        receivers = (nodes + 3) % 8
        delays = schedule.delivery_delays(nodes, steps, receivers)
        assert all(
            schedule.delivery_delay(int(v), int(t), int(u)) == float(value)
            for v, t, u, value in zip(nodes, steps, receivers, delays)
        )

    def test_batch_samples_are_positive_and_finite(self, policy):
        import numpy as np

        schedule = self._schedule(policy)
        nodes = np.repeat(np.arange(8), 50)
        steps = np.tile(np.arange(1, 51), 8)
        lengths = schedule.step_lengths(nodes, steps)
        delays = schedule.delivery_delays(nodes, steps, (nodes + 1) % 8)
        for values in (lengths, delays):
            assert np.isfinite(values).all()
            assert (values > 0).all()

    def test_delay_lower_bound_actually_bounds(self, policy):
        import numpy as np

        schedule = self._schedule(policy)
        bound = schedule.delay_lower_bound()
        assert bound is not None and bound > 0
        nodes = np.repeat(np.arange(8), 40)
        steps = np.tile(np.arange(1, 41), 8)
        delays = schedule.delivery_delays(nodes, steps, (nodes + 1) % 8)
        assert (delays >= bound).all()


class TestBatchValidation:
    def test_default_batch_fallback_loops_over_scalars(self):
        np = pytest.importorskip("numpy")
        from repro.scheduling.adversary import AdversarySchedule

        class Doubling(AdversarySchedule):
            def step_length(self, node, step):
                return float(node + 2 * step)

            def delivery_delay(self, sender, step, receiver):
                return float(sender + step + receiver + 1)

        schedule = Doubling()
        assert not schedule.batch_capable
        lengths = schedule.step_lengths(np.array([0, 1]), np.array([3, 4]))
        assert lengths.tolist() == [6.0, 9.0]
        delays = schedule.delivery_delays(np.array([0]), np.array([2]), np.array([5]))
        assert delays.tolist() == [8.0]

    def test_batch_fallback_validates_positivity(self):
        np = pytest.importorskip("numpy")
        from repro.scheduling.adversary import AdversarySchedule

        class Broken(AdversarySchedule):
            def step_length(self, node, step):
                return 1.0

            def delivery_delay(self, sender, step, receiver):
                return 1.0

            def step_lengths(self, nodes, steps):
                from repro.scheduling.adversary import _validated_positive

                return _validated_positive(np.zeros(len(nodes)), "step length")

        with pytest.raises(ExecutionError):
            Broken().step_lengths(np.array([0, 1]), np.array([1, 1]))


class TestDerivedAdversarySeed:
    def test_derivation_is_a_pure_integer_mix(self):
        from repro.scheduling.adversary import derive_adversary_seed

        assert derive_adversary_seed(42) == derive_adversary_seed(42)
        assert derive_adversary_seed(42) != derive_adversary_seed(43)
        assert derive_adversary_seed(None) != derive_adversary_seed(0)

    def test_derivation_survives_hash_randomization(self):
        """The old ``(seed, "adversary").__hash__()`` fallback changed with
        ``PYTHONHASHSEED``; the integer mix must not."""
        import os
        import pathlib
        import subprocess
        import sys

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        script = (
            "from repro.scheduling.adversary import derive_adversary_seed;"
            "print(derive_adversary_seed(123), derive_adversary_seed(None))"
        )
        outputs = set()
        for hash_seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": hash_seed,
                    "PYTHONPATH": str(repo_root / "src"),
                },
                cwd=repo_root,
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
