"""Unit tests for the protocol abstractions (strict and extended)."""

import pytest

from repro.core.alphabet import EPSILON, Observation
from repro.core.errors import ProtocolSpecificationError
from repro.core.protocol import (
    ExtendedProtocol,
    TableExtendedProtocol,
    TableProtocol,
    TransitionChoice,
    tabulate_extended,
)


def make_table_protocol(**overrides):
    spec = dict(
        name="toy",
        states=["idle", "done"],
        alphabet=["quiet", "go"],
        initial_letter="quiet",
        bounding=1,
        query={"idle": "go", "done": "go"},
        delta={
            ("idle", 1): [("done", "go")],
            ("idle", 0): [("idle", EPSILON)],
        },
        input_states=["idle"],
        output_states=["done"],
    )
    spec.update(overrides)
    return TableProtocol(**spec)


class TestTransitionChoice:
    def test_transmits_with_letter(self):
        assert TransitionChoice("s", "go").transmits()

    def test_does_not_transmit_epsilon(self):
        assert not TransitionChoice("s", EPSILON).transmits()

    def test_default_emission_is_epsilon(self):
        assert not TransitionChoice("s").transmits()


class TestTableProtocol:
    def test_basic_construction_and_lookup(self):
        protocol = make_table_protocol()
        assert protocol.query_letter("idle") == "go"
        assert protocol.options("idle", 1)[0].state == "done"

    def test_missing_delta_entry_defaults_to_stay_silent(self):
        protocol = make_table_protocol()
        (choice,) = protocol.options("done", 0)
        assert choice.state == "done"
        assert not choice.transmits()

    def test_counts_above_bound_are_clamped(self):
        protocol = make_table_protocol()
        assert protocol.options("idle", 5) == protocol.options("idle", 1)

    def test_initial_state_default(self):
        assert make_table_protocol().initial_state() == "idle"

    def test_initial_state_rejects_unexpected_input(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol().initial_state("surprise")

    def test_output_state_detection(self):
        protocol = make_table_protocol()
        assert protocol.is_output_state("done")
        assert not protocol.is_output_state("idle")

    def test_census_counts_states_and_letters(self):
        census = make_table_protocol().census()
        assert census.num_states == 2
        assert census.alphabet_size == 2
        assert census.bounding == 1
        assert census.is_constant_size()

    def test_initial_letter_must_be_in_alphabet(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(initial_letter="nope")

    def test_query_letter_must_exist_for_every_state(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(query={"idle": "go"})

    def test_query_letter_must_be_in_alphabet(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(query={"idle": "nope", "done": "go"})

    def test_transition_from_unknown_state_rejected(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(delta={("ghost", 0): [("done", "go")]})

    def test_transition_to_unknown_state_rejected(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(delta={("idle", 0): [("ghost", "go")]})

    def test_transition_with_unknown_emission_rejected(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(delta={("idle", 0): [("done", "nope")]})

    def test_transition_count_outside_bound_rejected(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(delta={("idle", 2): [("done", "go")]})

    def test_empty_option_set_rejected(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(delta={("idle", 0): []})

    def test_input_state_must_be_a_state(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(input_states=["ghost"])

    def test_output_state_must_be_a_state(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(output_states=["ghost"])

    def test_at_least_one_input_state_required(self):
        with pytest.raises(ProtocolSpecificationError):
            make_table_protocol(input_states=[])

    def test_validate_option_set_rejects_empty(self):
        protocol = make_table_protocol()
        with pytest.raises(ProtocolSpecificationError):
            protocol.validate_option_set(())


class _ThresholdProtocol(ExtendedProtocol):
    """Tiny rule-based extended protocol used for tabulation tests."""

    def __init__(self):
        super().__init__(
            name="threshold",
            alphabet=["a", "b"],
            initial_letter="a",
            bounding=1,
            input_states=["wait"],
            output_states=["fire"],
        )

    def options(self, state, observation):
        if state == "fire":
            return (TransitionChoice("fire", EPSILON),)
        if observation.count("a") >= 1 and observation.count("b") >= 1:
            return (TransitionChoice("fire", "b"),)
        return (TransitionChoice("wait", EPSILON),)


class TestTableExtendedProtocol:
    def test_observation_keyed_lookup(self):
        protocol = TableExtendedProtocol(
            name="ext",
            states=["s", "t"],
            alphabet=["a", "b"],
            initial_letter="a",
            bounding=1,
            delta={("s", (1, 1)): [("t", "b")]},
            input_states=["s"],
            output_states=["t"],
        )
        hot = Observation(protocol.alphabet, [1, 1])
        cold = Observation(protocol.alphabet, [1, 0])
        assert protocol.options("s", hot)[0].state == "t"
        assert protocol.options("s", cold)[0].state == "s"

    def test_wrong_arity_observation_key_rejected(self):
        with pytest.raises(ProtocolSpecificationError):
            TableExtendedProtocol(
                name="ext",
                states=["s"],
                alphabet=["a", "b"],
                initial_letter="a",
                bounding=1,
                delta={("s", (1,)): [("s", EPSILON)]},
                input_states=["s"],
            )

    def test_tabulate_extended_matches_rule_based_protocol(self):
        rules = _ThresholdProtocol()
        table = tabulate_extended(rules, ["wait", "fire"])
        for counts in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            observation = Observation(rules.alphabet, counts)
            assert [c.state for c in table.options("wait", observation)] == [
                c.state for c in rules.options("wait", observation)
            ]

    def test_tabulated_protocol_census_is_finite(self):
        table = tabulate_extended(_ThresholdProtocol(), ["wait", "fire"])
        assert table.census().num_states == 2
