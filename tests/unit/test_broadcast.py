"""Unit tests for the broadcast protocol."""

import pytest

from repro.core.alphabet import EPSILON
from repro.protocols.broadcast import (
    IDLE,
    INFORMED,
    SOURCE,
    TOKEN,
    BroadcastProtocol,
    broadcast_inputs,
)


class TestBroadcastProtocol:
    def setup_method(self):
        self.protocol = BroadcastProtocol()

    def test_initial_states_follow_the_input(self):
        assert self.protocol.initial_state(None) == IDLE
        assert self.protocol.initial_state("source") == SOURCE
        assert self.protocol.initial_state(True) == SOURCE

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            self.protocol.initial_state("boss")

    def test_source_fires_unconditionally(self):
        for count in (0, 1):
            (choice,) = self.protocol.options(SOURCE, count)
            assert choice.state == INFORMED
            assert choice.emit == TOKEN

    def test_idle_waits_for_the_token(self):
        (stay,) = self.protocol.options(IDLE, 0)
        assert stay.state == IDLE
        assert stay.emit is EPSILON or not stay.transmits()
        (fire,) = self.protocol.options(IDLE, 1)
        assert fire.state == INFORMED
        assert fire.emit == TOKEN

    def test_informed_is_a_silent_sink(self):
        (choice,) = self.protocol.options(INFORMED, 1)
        assert choice.state == INFORMED
        assert not choice.transmits()

    def test_every_state_queries_the_token(self):
        for state in self.protocol.states():
            assert self.protocol.query_letter(state) == TOKEN

    def test_output_decoding(self):
        assert self.protocol.is_output_state(INFORMED)
        assert not self.protocol.is_output_state(IDLE)
        assert self.protocol.output_value(INFORMED) is True
        assert self.protocol.output_value(IDLE) is False

    def test_census_is_tiny_and_constant(self):
        census = self.protocol.census()
        assert census.num_states == 3
        assert census.alphabet_size == 2
        assert census.bounding == 1

    def test_broadcast_inputs_helper(self):
        assert broadcast_inputs(3) == {3: "source"}
