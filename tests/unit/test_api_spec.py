"""Unit tests for RunSpec serialization/resolution and the registries."""

import json

import pytest

from repro.api import (
    ADVERSARIES,
    GRAPH_FAMILIES,
    PROTOCOLS,
    RunSpec,
    register_adversary,
    register_graph_family,
    register_protocol,
)
from repro.core.errors import RegistryError, SpecError
from repro.graphs.graph import Graph
from repro.protocols.mis import MISProtocol
from repro.scheduling.adversary import UniformRandomAdversary


class TestRunSpecValidation:
    def test_defaults(self):
        spec = RunSpec(protocol="mis")
        assert spec.environment == "sync"
        assert spec.backend == "auto"
        assert spec.family == "gnp_sparse"  # the protocol's default family

    def test_unknown_environment_rejected(self):
        with pytest.raises(SpecError, match="environment"):
            RunSpec(protocol="mis", environment="quantum")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="backend"):
            RunSpec(protocol="mis", backend="gpu")

    def test_adversary_requires_async(self):
        with pytest.raises(SpecError, match="environment='async'"):
            RunSpec(protocol="mis", adversary="uniform")

    def test_none_param_dicts_normalised(self):
        spec = RunSpec(protocol="mis", protocol_params=None, inputs=None)
        assert spec.protocol_params == {} and spec.inputs == {}


class TestRunSpecSerialization:
    def test_round_trip_through_dict_and_json(self):
        spec = RunSpec(
            protocol="mis",
            nodes=48,
            graph="cycle",
            environment="async",
            adversary="skewed-rates",
            adversary_params={"slow_factor": 4.0},
            seed=11,
            protocol_params={"climb_weight": 3},
        )
        restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_partial_dict_uses_defaults(self):
        spec = RunSpec.from_dict({"protocol": "coloring", "nodes": 10})
        assert spec == RunSpec(protocol="coloring", nodes=10)

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown RunSpec keys"):
            RunSpec.from_dict({"protocol": "mis", "nodez": 4})

    def test_protocol_is_mandatory(self):
        with pytest.raises(SpecError, match="protocol"):
            RunSpec.from_dict({"nodes": 4})

    def test_replace_returns_modified_copy(self):
        spec = RunSpec(protocol="mis", nodes=8)
        bigger = spec.replace(nodes=64)
        assert bigger.nodes == 64 and spec.nodes == 8
        assert bigger.protocol == "mis"


class TestRunSpecResolution:
    def test_build_protocol_forwards_params(self):
        spec = RunSpec(protocol="mis", protocol_params={"climb_weight": 3})
        protocol = spec.build_protocol()
        assert isinstance(protocol, MISProtocol)

    def test_build_graph_uses_graph_seed_then_seed(self):
        by_seed = RunSpec(protocol="mis", graph="gnp_sparse", nodes=24, seed=5)
        explicit = RunSpec(
            protocol="mis", graph="gnp_sparse", nodes=24, seed=99, graph_seed=5
        )
        assert by_seed.build_graph().edges == explicit.build_graph().edges

    def test_build_inputs_rejected_for_inputless_protocols(self):
        spec = RunSpec(protocol="mis", inputs={"source": 1})
        with pytest.raises(SpecError, match="takes no inputs"):
            spec.build_inputs(spec.build_graph())

    def test_build_inputs_for_broadcast(self):
        spec = RunSpec(protocol="broadcast", nodes=6, graph="path", inputs={"source": 2})
        assert spec.build_inputs(spec.build_graph()) == {2: "source"}

    def test_build_adversary(self):
        spec = RunSpec(
            protocol="mis",
            environment="async",
            adversary="uniform",
            adversary_params={"low": 0.25, "high": 2.0},
        )
        adversary = spec.build_adversary()
        assert isinstance(adversary, UniformRandomAdversary)
        assert adversary.low == 0.25

    def test_unknown_protocol_name_lists_alternatives(self):
        with pytest.raises(RegistryError, match="registered:.*mis"):
            RunSpec(protocol="misx").entry()

    def test_runner_entries_have_no_factory(self):
        with pytest.raises(SpecError, match="custom runner"):
            RunSpec(protocol="matching").build_protocol()


class TestRegistries:
    def test_builtins_are_registered(self):
        assert {"mis", "coloring", "broadcast", "matching"} <= set(PROTOCOLS.names())
        assert {"path", "random_tree", "gnp_sparse"} <= set(GRAPH_FAMILIES.names())
        assert {"uniform", "synchronous", "bursty"} <= set(ADVERSARIES.names())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_graph_family("path")(lambda n, seed=None: None)

    def test_unknown_lookup_reports_candidates(self):
        with pytest.raises(RegistryError, match="unknown adversary"):
            ADVERSARIES.get("does-not-exist")

    def test_extension_round_trip(self):
        @register_graph_family("test-family-tmp")
        def tiny(n, seed=None):
            return Graph(2, [(0, 1)])

        @register_adversary("test-adversary-tmp")
        class TmpAdversary(UniformRandomAdversary):
            pass

        @register_protocol("test-protocol-tmp", title="tmp", default_family="path")
        class TmpProtocol(MISProtocol):
            pass

        try:
            assert GRAPH_FAMILIES.get("test-family-tmp")(2).num_edges == 1
            assert ADVERSARIES.get("test-adversary-tmp") is TmpAdversary
            entry = PROTOCOLS.get("test-protocol-tmp")
            assert entry.factory is TmpProtocol and entry.spec_runnable
            spec = RunSpec(protocol="test-protocol-tmp", nodes=4)
            assert spec.family == "path"
        finally:
            GRAPH_FAMILIES.unregister("test-family-tmp")
            ADVERSARIES.unregister("test-adversary-tmp")
            PROTOCOLS.unregister("test-protocol-tmp")
