"""Unit tests for the Stone Age MIS protocol's transition relation."""

import pytest

from repro.core.alphabet import Observation
from repro.protocols.mis import (
    DELAYING_STATES,
    DOWN1,
    DOWN2,
    LOSE,
    MIS_STATES,
    UP0,
    UP1,
    UP2,
    UP_STATES,
    WIN,
    MISProtocol,
    mis_from_result,
)


def observe(protocol, **counts):
    """Build an observation with the given letter counts (others zero)."""
    return Observation(protocol.alphabet, {letter: counts.get(letter, 0) for letter in protocol.alphabet})


class TestStaticStructure:
    def setup_method(self):
        self.protocol = MISProtocol()

    def test_alphabet_equals_state_set(self):
        assert set(self.protocol.alphabet.letters) == set(MIS_STATES)

    def test_bounding_parameter_is_one(self):
        assert self.protocol.bounding.value == 1

    def test_initial_letter_and_state_are_down1(self):
        assert self.protocol.initial_letter == DOWN1
        assert self.protocol.initial_state() == DOWN1

    def test_output_states_and_decoding(self):
        assert self.protocol.is_output_state(WIN)
        assert self.protocol.is_output_state(LOSE)
        assert not self.protocol.is_output_state(UP0)
        assert self.protocol.output_value(WIN) is True
        assert self.protocol.output_value(LOSE) is False

    def test_census_is_constant(self):
        census = self.protocol.census()
        assert census.num_states == 7
        assert census.alphabet_size == 7
        assert census.bounding == 1

    def test_delaying_states_match_the_paper(self):
        assert DELAYING_STATES[DOWN1] == (DOWN2,)
        assert set(DELAYING_STATES[DOWN2]) == {UP0, UP1, UP2}
        assert set(DELAYING_STATES[UP0]) == {UP2, DOWN1}
        assert DELAYING_STATES[UP1] == (UP0,)
        assert DELAYING_STATES[UP2] == (UP1,)

    def test_queried_letters_cover_what_options_read(self):
        for state in (DOWN1, DOWN2, UP0, UP1, UP2):
            queried = set(self.protocol.queried_letters(state))
            assert set(DELAYING_STATES[state]) <= queried


class TestTransitions:
    def setup_method(self):
        self.protocol = MISProtocol()

    def test_sinks_stay_and_keep_silent(self):
        for sink in (WIN, LOSE):
            (choice,) = self.protocol.options(sink, observe(self.protocol, UP0=1, WIN=1))
            assert choice.state == sink
            assert not choice.transmits()

    @pytest.mark.parametrize("state", [DOWN1, DOWN2, UP0, UP1, UP2])
    def test_delaying_letters_freeze_the_node(self, state):
        for delayer in DELAYING_STATES[state]:
            (choice,) = self.protocol.options(state, observe(self.protocol, **{delayer: 1}))
            assert choice.state == state
            assert not choice.transmits()

    def test_down1_moves_up_when_not_delayed(self):
        (choice,) = self.protocol.options(DOWN1, observe(self.protocol))
        assert choice.state == UP0
        assert choice.emit == UP0

    def test_down2_returns_to_down1_without_a_winner(self):
        (choice,) = self.protocol.options(DOWN2, observe(self.protocol))
        assert choice.state == DOWN1
        assert choice.emit == DOWN1

    def test_down2_loses_when_a_winner_is_visible(self):
        (choice,) = self.protocol.options(DOWN2, observe(self.protocol, WIN=1))
        assert choice.state == LOSE
        assert choice.emit == LOSE

    @pytest.mark.parametrize("j", [0, 1, 2])
    def test_up_states_flip_a_fair_coin(self, j):
        state = UP_STATES[j]
        next_up = UP_STATES[(j + 1) % 3]
        options = self.protocol.options(state, observe(self.protocol))
        assert len(options) == 2
        heads, tails = options
        assert heads.state == next_up and heads.emit == next_up
        # With no competing UP letters in the ports the tail outcome is WIN.
        assert tails.state == WIN and tails.emit == WIN

    @pytest.mark.parametrize("j", [0, 1, 2])
    def test_up_states_fall_to_down2_when_contested(self, j):
        state = UP_STATES[j]
        next_up = UP_STATES[(j + 1) % 3]
        for competitor in (state, next_up):
            options = self.protocol.options(state, observe(self.protocol, **{competitor: 1}))
            tails = options[1]
            assert tails.state == DOWN2

    def test_up_letter_transmitted_only_on_state_change(self):
        # When delayed the node keeps silent; when it advances it announces
        # the new state.
        delayed = self.protocol.options(UP1, observe(self.protocol, UP0=1))[0]
        assert not delayed.transmits()
        moving = self.protocol.options(UP1, observe(self.protocol))[0]
        assert moving.transmits()


class TestResultExtraction:
    def test_mis_from_result_picks_true_outputs(self):
        class FakeResult:
            outputs = {0: True, 1: False, 2: True}

        assert mis_from_result(FakeResult()) == {0, 2}
