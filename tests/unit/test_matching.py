"""Unit tests for maximal matching via the line-graph reduction."""

import pytest

from repro.graphs import complete_graph, cycle_graph, empty_graph, gnp_random_graph, path_graph, star_graph
from repro.protocols.matching import matched_nodes, maximal_matching_via_line_graph
from repro.verification import is_maximal_matching


class TestLineGraphMatching:
    @pytest.mark.parametrize("graph_builder, seed", [
        (lambda: path_graph(9), 1),
        (lambda: cycle_graph(8), 2),
        (lambda: star_graph(7), 3),
        (lambda: complete_graph(6), 4),
        (lambda: gnp_random_graph(30, 0.15, seed=5), 5),
    ])
    def test_result_is_a_maximal_matching(self, graph_builder, seed):
        graph = graph_builder()
        matching, result = maximal_matching_via_line_graph(graph, seed=seed)
        assert is_maximal_matching(graph, matching)
        assert result is not None and result.reached_output

    def test_star_matching_has_exactly_one_edge(self):
        matching, _ = maximal_matching_via_line_graph(star_graph(9), seed=7)
        assert len(matching) == 1

    def test_edgeless_graph_yields_an_empty_matching(self):
        matching, result = maximal_matching_via_line_graph(empty_graph(5), seed=1)
        assert matching == []
        assert result is None

    def test_matching_edges_belong_to_the_graph(self):
        graph = gnp_random_graph(20, 0.3, seed=9)
        matching, _ = maximal_matching_via_line_graph(graph, seed=9)
        for u, v in matching:
            assert graph.has_edge(u, v)

    def test_seed_determinism(self):
        graph = gnp_random_graph(20, 0.3, seed=2)
        first, _ = maximal_matching_via_line_graph(graph, seed=11)
        second, _ = maximal_matching_via_line_graph(graph, seed=11)
        assert first == second

    def test_matched_nodes_helper(self):
        assert matched_nodes([(0, 1), (3, 4)]) == {0, 1, 3, 4}
        assert matched_nodes([]) == set()
