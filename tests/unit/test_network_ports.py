"""Unit tests for the port table and network state (Section 2 semantics)."""

import pytest

from repro.core.errors import ExecutionError
from repro.core.network import NetworkState, PortTable
from repro.graphs import Graph, path_graph, star_graph


class TestPortTable:
    def setup_method(self):
        self.graph = path_graph(3)
        self.ports = PortTable(self.graph, initial_letter="σ0")

    def test_all_ports_start_with_the_initial_letter(self):
        assert self.ports.contents(1) == ("σ0", "σ0")
        assert self.ports.contents(0) == ("σ0",)

    def test_deliver_overwrites_single_port(self):
        self.ports.deliver(receiver=1, sender=0, letter="x")
        assert self.ports.get(1, 0) == "x"
        assert self.ports.get(1, 2) == "σ0"

    def test_second_delivery_overwrites_first(self):
        # No buffering: a later delivery replaces the earlier one (the
        # receiver never learns the first letter existed).
        self.ports.deliver(1, 0, "first")
        self.ports.deliver(1, 0, "second")
        assert self.ports.get(1, 0) == "second"

    def test_broadcast_reaches_all_neighbours(self):
        star = star_graph(4)
        ports = PortTable(star, initial_letter="q")
        ports.broadcast(0, "hello")
        for leaf in range(1, 5):
            assert ports.get(leaf, 0) == "hello"
        # The sender's own ports are untouched.
        assert ports.contents(0) == ("q",) * 4

    def test_broadcast_does_not_touch_non_neighbours(self):
        self.ports.broadcast(0, "x")
        assert self.ports.get(2, 1) == "σ0"

    def test_delivery_between_non_neighbours_rejected(self):
        with pytest.raises(ExecutionError):
            self.ports.deliver(0, 2, "x")

    def test_get_between_non_neighbours_rejected(self):
        with pytest.raises(ExecutionError):
            self.ports.get(0, 2)

    def test_snapshot_is_immutable_copy(self):
        snapshot = self.ports.snapshot()
        self.ports.deliver(1, 0, "x")
        assert snapshot[1] == ("σ0", "σ0")

    def test_graph_accessor(self):
        assert self.ports.graph is self.graph


class TestNetworkState:
    def test_initial_states_must_cover_all_nodes(self):
        with pytest.raises(ExecutionError):
            NetworkState(path_graph(3), ["a", "b"], initial_letter="q")

    def test_all_in_predicate(self):
        state = NetworkState(path_graph(3), ["a", "a", "b"], initial_letter="q")
        assert state.all_in(lambda s: s in {"a", "b"})
        assert not state.all_in(lambda s: s == "a")

    def test_steps_taken_starts_at_zero(self):
        state = NetworkState(Graph(2, [(0, 1)]), ["a", "a"], initial_letter="q")
        assert state.steps_taken == [0, 0]
