"""Property tests for the result store's canonical spec hashing.

The content-addressable store is only correct if the hash is a *canonical*
function of the spec: invariant under dict key order, ``to_dict`` → JSON →
``from_dict`` round trips and partial-dict defaulting, while *every* field
change — top-level or nested — produces a different hash.  Hypothesis
explores those invariants over the spec space; a handful of golden hashes
pin the byte-level contract so an accidental canonicalization change (or a
forgotten ``STORE_SCHEMA_VERSION`` bump) fails loudly instead of silently
orphaning every existing store.

The suite skips cleanly when Hypothesis is not installed (it is a test-only
dependency; CI installs it explicitly).
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.api import RunSpec, spec_hash  # noqa: E402
from repro.api.store import (  # noqa: E402
    STORE_SCHEMA_VERSION,
    canonical_spec_json,
    canonical_spec_payload,
    decode_value,
    encode_value,
)

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# JSON-representable parameter values (what a spec can carry through a file).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)


@st.composite
def specs_strategy(draw):
    """Valid ``RunSpec`` instances (the adversary axis is async-only)."""
    environment = draw(st.sampled_from(["sync", "async"]))
    if environment == "async":
        adversary = draw(st.none() | st.sampled_from(["uniform", "bursty"]))
        adversary_seed = draw(st.none() | st.integers(min_value=0, max_value=2**31))
    else:
        adversary = None
        adversary_seed = None
    # Every environment shards (sync rounds, async event buckets, dynamic
    # segments) since schema version 5.
    shards = draw(st.none() | st.integers(min_value=1, max_value=8))
    params = st.dictionaries(st.text(min_size=1, max_size=6), json_values, max_size=3)
    return RunSpec(
        protocol=draw(st.sampled_from(["mis", "coloring", "broadcast"])),
        nodes=draw(st.integers(min_value=1, max_value=512)),
        graph=draw(st.none() | st.sampled_from(["gnp_sparse", "random_tree", "path"])),
        environment=environment,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        graph_seed=draw(st.none() | st.integers(min_value=0, max_value=2**31)),
        adversary=adversary,
        adversary_seed=adversary_seed,
        protocol_params=draw(params),
        graph_params=draw(params),
        inputs=draw(params),
        max_rounds=draw(st.integers(min_value=1, max_value=10**6)),
        max_events=draw(st.integers(min_value=1, max_value=10**7)),
        shards=shards,
    )


specs = specs_strategy()


# ---------------------------------------------------------------------- #
# Hash invariances                                                        #
# ---------------------------------------------------------------------- #
@COMMON
@given(spec=specs)
def test_hash_invariant_under_dict_round_trip(spec):
    """to_dict → JSON → from_dict never changes the hash."""
    rehydrated = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert spec_hash(rehydrated) == spec_hash(spec)


@COMMON
@given(spec=specs)
def test_hash_invariant_under_key_order(spec):
    """A reversed-key spec dictionary hashes identically."""
    data = spec.to_dict()
    reversed_keys = {key: data[key] for key in reversed(list(data))}
    assert spec_hash(reversed_keys) == spec_hash(spec)


@COMMON
@given(spec=specs)
def test_partial_dict_hashes_like_defaulted_spec(spec):
    """Dropping default-valued keys does not change the hash."""
    data = spec.to_dict()
    defaults = RunSpec(protocol=spec.protocol).to_dict()
    partial = {
        key: value
        for key, value in data.items()
        if key == "protocol" or value != defaults.get(key)
    }
    assert spec_hash(partial) == spec_hash(spec)


@COMMON
@given(spec=specs, delta=st.integers(min_value=1, max_value=1000))
def test_seed_change_changes_hash(spec, delta):
    assert spec_hash(spec.replace(seed=spec.seed + delta)) != spec_hash(spec)


@COMMON
@given(spec=specs, delta=st.integers(min_value=1, max_value=1000))
def test_nodes_change_changes_hash(spec, delta):
    assert spec_hash(spec.replace(nodes=spec.nodes + delta)) != spec_hash(spec)


@COMMON
@given(spec=specs, value=st.integers(min_value=0, max_value=2**31))
def test_nested_param_change_changes_hash(spec, value):
    """A nested protocol parameter lands in the hash."""
    changed = spec.replace(
        protocol_params={**spec.protocol_params, "__probe__": value}
    )
    assert spec_hash(changed) != spec_hash(spec)


@COMMON
@given(spec=specs, shards_a=st.integers(1, 16), shards_b=st.integers(1, 16))
def test_hash_is_shard_count_invariant(spec, shards_a, shards_b):
    """Sharded results are shard-count-invariant, so the hash must be too.

    Any ``shards >= 1`` selects the same counter rng stream and therefore
    the same result — one cache entry serves them all.  ``shards=None``
    (the legacy serial rng) is a different random process and must keep a
    distinct address.  Holds in every environment — async event buckets
    and dynamic segments shard under the same counter-rng contract.
    """
    sharded_a = spec.replace(shards=shards_a)
    sharded_b = spec.replace(shards=shards_b)
    unsharded = spec.replace(shards=None)
    assert spec_hash(sharded_a) == spec_hash(sharded_b)
    assert spec_hash(sharded_a) != spec_hash(unsharded)


@COMMON
@given(
    spec=specs,
    backend_a=st.sampled_from(["python", "vectorized", "kernel", "auto"]),
    backend_b=st.sampled_from(["python", "vectorized", "kernel", "auto"]),
)
def test_hash_is_backend_invariant(spec, backend_a, backend_b):
    """Every backend tier is bitwise-identical, so the hash ignores it.

    The store addresses *results*, and the whole point of the parity-locked
    tier ladder is that ``python``, ``vectorized`` and ``kernel`` produce
    the same result for the same spec — one cache entry serves them all.
    """
    if "python" in (backend_a, backend_b) and spec.shards is not None:
        spec = spec.replace(shards=None)  # sharding rejects the python tier
    assert spec_hash(spec.replace(backend=backend_a)) == spec_hash(
        spec.replace(backend=backend_b)
    )


@COMMON
@given(spec=specs)
def test_canonical_json_is_deterministic(spec):
    """Two renderings of the same spec are byte-identical."""
    assert canonical_spec_json(spec) == canonical_spec_json(spec.to_dict())
    payload = canonical_spec_payload(spec)
    assert payload["schema"] == STORE_SCHEMA_VERSION


# ---------------------------------------------------------------------- #
# Payload encoding round trips                                            #
# ---------------------------------------------------------------------- #
payload_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False)
    | st.text(max_size=8)
    | st.binary(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.tuples(children, children)
    | st.dictionaries(st.integers(min_value=-50, max_value=50), children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=8,
)


@COMMON
@given(value=payload_values)
def test_encode_decode_round_trip(value):
    """decode(encode(v)) == v and the encoding is JSON-serializable."""
    encoded = encode_value(value)
    json.dumps(encoded, allow_nan=False)
    assert decode_value(encoded) == value


@COMMON
@given(value=st.frozensets(st.integers(min_value=-100, max_value=100), max_size=6))
def test_frozenset_round_trip_is_order_independent(value):
    encoded_a = encode_value(value)
    encoded_b = encode_value(frozenset(sorted(value, reverse=True)))
    assert encoded_a == encoded_b
    assert decode_value(encoded_a) == value


# ---------------------------------------------------------------------- #
# Golden hashes — the byte-level contract                                 #
# ---------------------------------------------------------------------- #
#: Pinned canonical hashes.  These change ONLY when the spec schema or the
#: canonicalization rules change — and any such change must come with a
#: STORE_SCHEMA_VERSION bump (which changes every hash by construction).
GOLDEN_HASHES = {
    "556b0ba56617017c1272705b54d4cdd24e8d2ffc38e92d32d5652425a867753e": RunSpec(
        protocol="mis", nodes=32, seed=5
    ),
    "0690867745e7f19dd6a0951ef7a476a11526032de350c05c0430d4a849c636f5": RunSpec(
        protocol="coloring", nodes=16, seed=3, graph="random_tree"
    ),
    "c6d3f5b8f06859adc83a49f55b3423268907afa2f2678372ae91f869af084e34": RunSpec(
        protocol="mis", environment="async", nodes=12, seed=7, adversary="uniform"
    ),
    # Sharded spec: shards=4 canonicalizes to shards=1 inside the digest.
    "bc8293615e41fd89bb77971a366725c7f4729e12b4a856b798d26ff014eff9b9": RunSpec(
        protocol="mis", nodes=32, seed=5, shards=4
    ),
    # Dynamic spec: the churn fields are part of the canonical rendering.
    "ba8cdf4d0b9db4c9d10391ad407fa02b56c8d51c8854181fb850cb2715d8f06d": RunSpec(
        protocol="mis",
        nodes=24,
        seed=11,
        environment="dynamic",
        churn="burst",
        churn_params={"flips": 3},
    ),
    # Sharded async spec (legal since schema 5): shard count canonicalizes
    # to 1 here too.
    "7fed352bdbe822fcf171df99cb1e998127e0fc430ced27c2c435cad6cd8bd447": RunSpec(
        protocol="mis",
        environment="async",
        nodes=12,
        seed=7,
        adversary="uniform",
        shards=4,
    ),
}


def test_schema_version_is_pinned():
    # Version 5: shards became legal for the async and dynamic environments
    # (version 4 added the dynamic environment's churn fields; version 3
    # canonicalized the backend field to "auto" — every tier is
    # bitwise-identical, so one cache entry serves them all).
    assert STORE_SCHEMA_VERSION == 5


@pytest.mark.parametrize("digest", sorted(GOLDEN_HASHES))
def test_golden_hashes(digest):
    assert spec_hash(GOLDEN_HASHES[digest]) == digest


def test_golden_canonical_json():
    """The full canonical rendering of one spec, byte for byte."""
    assert canonical_spec_json(RunSpec(protocol="mis", nodes=32, seed=5)) == (
        '{"schema":5,"spec":{"adversary":null,"adversary_params":{},'
        '"adversary_seed":null,"backend":"auto","churn":null,'
        '"churn_params":{},"churn_seed":null,"environment":"sync",'
        '"graph":null,"graph_params":{},"graph_seed":null,"inputs":{},'
        '"max_events":5000000,"max_rounds":100000,"nodes":32,'
        '"protocol":"mis","protocol_params":{},"seed":5,"shards":null}}'
    )
