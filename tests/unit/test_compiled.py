"""Unit tests for the shared compiled-execution core (`scheduling.compiled`).

The eager :class:`CompiledProtocol` is covered by `test_vectorized_engine`
and the strict lazy table by `test_vectorized_async_engine`; this module
pins the contract of :class:`LazyExtendedTable` — the multi-letter lazy
table that lets the *synchronous* vectorized engine run synchronizer- and
multiquery-compiled protocols: on-demand growth, determinism, interpreter
equivalence and budget enforcement.
"""

import pytest

from repro.compilers import compile_to_asynchronous, lower_to_single_query
from repro.core.alphabet import Observation, is_epsilon
from repro.core.errors import ProtocolNotVectorizableError
from repro.graphs import gnp_random_graph, path_graph
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import MISProtocol
from repro.scheduling.compiled import LazyExtendedTable
from repro.scheduling.sync_engine import run_synchronous
from repro.scheduling.vectorized_engine import run_vectorized


class TestConstruction:
    def test_accepts_extended_and_strict_protocols(self):
        assert LazyExtendedTable(MISProtocol()).num_states == 0
        assert LazyExtendedTable(BroadcastProtocol()).num_states == 0

    def test_rejects_non_protocol_objects(self):
        with pytest.raises(ProtocolNotVectorizableError):
            LazyExtendedTable(object())

    def test_alphabet_letters_get_the_leading_ids(self):
        protocol = MISProtocol()
        table = LazyExtendedTable(protocol)
        assert table.alphabet_size == len(protocol.alphabet)
        for position, letter in enumerate(protocol.alphabet.letters):
            assert table.letter_value(position) == letter
        assert table.initial_letter_id == protocol.alphabet.index(protocol.initial_letter)


class TestOnDemandGrowth:
    def test_interning_allocates_cells_but_does_not_evaluate(self):
        protocol = MISProtocol()
        table = LazyExtendedTable(protocol)
        state_id = table.state_id(protocol.initial_state())
        arity = len(protocol.queried_letters(protocol.initial_state()))
        b1 = protocol.bounding.value + 1
        assert table.num_states >= 1
        assert table.num_allocated_cells >= b1**arity
        assert table.num_cells == 0  # nothing evaluated yet
        offset, count = table.cell(state_id, 0)
        assert count >= 1 and offset >= 0
        assert table.num_cells == 1  # exactly the queried cell materialised

    def test_ensure_cells_is_idempotent_and_batched(self):
        protocol = MISProtocol()
        table = LazyExtendedTable(protocol)
        state_id = table.state_id(protocol.initial_state())
        table.ensure_cells([state_id, state_id], [0, 0])
        evaluated = table.num_cells
        table.ensure_cells([state_id], [0])
        assert table.num_cells == evaluated

    def test_strict_protocols_use_their_single_query_letter(self):
        protocol = compile_to_asynchronous(BroadcastProtocol())
        table = LazyExtendedTable(protocol)
        state_id = table.state_id(protocol.initial_state())
        queried = table.queried_letter_ids(state_id)
        assert queried == table.queried_letter_ids(state_id)  # stable across calls
        assert len(queried) == 1
        assert table.letter_value(queried[0]) == protocol.query_letter(protocol.initial_state())

    def test_state_budget_is_enforced(self):
        protocol = compile_to_asynchronous(MISProtocol())
        table = LazyExtendedTable(protocol, max_states=1)
        table.state_id(protocol.initial_state())
        with pytest.raises(ProtocolNotVectorizableError):
            table.cell(0, 0)  # evaluating discovers successor states

    def test_cell_budget_is_enforced(self):
        protocol = MISProtocol()  # every state allocates (b+1)^k >= 2 cells
        table = LazyExtendedTable(protocol, max_cells=1)
        with pytest.raises(ProtocolNotVectorizableError):
            table.state_id(protocol.initial_state())


class TestObservationEncoding:
    def test_observation_id_matches_big_endian_counts(self):
        protocol = MISProtocol()
        table = LazyExtendedTable(protocol)
        state = protocol.initial_state()
        state_id = table.state_id(state)
        arity = len(protocol.queried_letters(state))
        b1 = protocol.bounding.value + 1
        counts = tuple(i % b1 for i in range(arity))
        expected = 0
        for count in counts:
            expected = expected * b1 + count
        assert table.observation_id(state_id, counts) == expected
        with pytest.raises(ValueError):
            table.observation_id(state_id, counts + (0,))

    def test_cell_options_match_the_object_level_protocol(self):
        protocol = MISProtocol()
        table = LazyExtendedTable(protocol)
        state = protocol.initial_state()
        state_id = table.state_id(state)
        queried = protocol.queried_letters(state)
        b1 = protocol.bounding.value + 1
        for raw in range(b1 ** len(queried)):
            digits, rest = [], raw
            for _ in queried:
                digits.append(rest % b1)
                rest //= b1
            counts = tuple(reversed(digits))
            observation = Observation(protocol.alphabet, dict(zip(queried, counts)))
            reference = protocol.validate_option_set(protocol.options(state, observation))
            offset, count = table.cell(state_id, raw)
            assert count == len(reference)
            for position, choice in enumerate(reference):
                next_id, emit_id = table.option(offset + position)
                assert table.state_value(next_id) == choice.state
                if is_epsilon(choice.emit):
                    assert emit_id == -1
                else:
                    assert table.letter_value(emit_id) == choice.emit

    def test_under_declared_queried_letters_are_rejected(self):
        class LyingProtocol(MISProtocol):
            def queried_letters(self, state):
                return ()  # options() still reads several letters

        table = LazyExtendedTable(LyingProtocol())
        state_id = table.state_id(LyingProtocol().initial_state())
        with pytest.raises(ProtocolNotVectorizableError):
            table.cell(state_id, 0)


class TestDeterminismAndSharing:
    def test_two_tables_agree_id_for_id(self):
        def build():
            protocol = compile_to_asynchronous(BroadcastProtocol())
            table = LazyExtendedTable(protocol)
            run_vectorized(
                path_graph(8),
                protocol,
                seed=3,
                inputs=broadcast_inputs(0),
                table=table,
                raise_on_timeout=False,
            )
            return table

        first, second = build(), build()
        assert first.num_states == second.num_states
        assert first.num_cells == second.num_cells
        for ident in range(first.num_states):
            assert first.state_value(ident) == second.state_value(ident)

    def test_shared_table_starts_later_runs_warm(self):
        protocol = compile_to_asynchronous(BroadcastProtocol())
        table = LazyExtendedTable(protocol)
        first = run_vectorized(
            path_graph(10),
            protocol,
            seed=1,
            inputs=broadcast_inputs(0),
            table=table,
            raise_on_timeout=False,
        )
        warm_cells = table.num_cells
        second = run_vectorized(
            path_graph(10),
            protocol,
            seed=1,
            inputs=broadcast_inputs(0),
            table=table,
            raise_on_timeout=False,
        )
        assert table.num_cells == warm_cells  # no new evaluation needed
        assert first.summary_fields() == second.summary_fields()

    def test_lazy_run_matches_interpreter_bitwise(self):
        def protocol_factory():
            return lower_to_single_query(MISProtocol())

        graph = gnp_random_graph(18, 0.3, seed=5)
        reference = run_synchronous(
            graph,
            protocol_factory(),
            seed=7,
            max_rounds=200_000,
            raise_on_timeout=False,
        )
        table = LazyExtendedTable(protocol_factory())
        vectorized = run_vectorized(
            graph,
            protocol_factory(),
            seed=7,
            max_rounds=200_000,
            raise_on_timeout=False,
            table=table,
        )
        assert reference.summary_fields() == vectorized.summary_fields()
        assert table.num_states > 0
