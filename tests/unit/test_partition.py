"""Property tests for the locality partition behind sharded execution.

Sharded execution relies on two contracts from :mod:`repro.graphs.partition`:

* the BFS relabelling is a *bijection* that preserves adjacency — otherwise
  a permuted run computes on a different graph; and
* the counter rng stream is keyed by **original** node ids, so running the
  vectorized engine on the permuted graph with ``rng_node_keys`` set to the
  inverse permutation reproduces the original run node-for-node.  This is
  exactly the invariant that makes sharded results independent of the shard
  count and of the partition permutation.

Hypothesis explores both over arbitrary small graphs; deterministic cases
pin the cut quality on the structured families the paper targets.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.errors import GraphError  # noqa: E402
from repro.graphs import (  # noqa: E402
    Graph,
    bfs_order,
    count_cut_edges,
    partition_graph,
    permute_csr,
    shard_bounds,
)
from repro.graphs.generators import path_graph  # noqa: E402
from repro.protocols.mis import MISProtocol  # noqa: E402
from repro.scheduling.vectorized_engine import VectorizedEngine  # noqa: E402

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs_strategy(draw, max_nodes=24):
    """Arbitrary small simple graphs (possibly disconnected, possibly empty)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    if n == 1:
        return Graph(1)
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda uv: uv[0] != uv[1]),
            max_size=3 * n,
        )
    )
    return Graph(n, edges)


graphs = graphs_strategy()
strategies_axis = st.sampled_from(["bfs", "none"])


# ---------------------------------------------------------------------- #
# Bijection and bounds                                                    #
# ---------------------------------------------------------------------- #
@COMMON
@given(graph=graphs, shards=st.integers(1, 6), strategy=strategies_axis)
def test_partition_is_a_bijection(graph, shards, strategy):
    p = partition_graph(graph, shards, strategy=strategy)
    n = graph.num_nodes
    assert sorted(p.perm.tolist()) == list(range(n))
    assert np.array_equal(p.perm[p.inv], np.arange(n))
    assert np.array_equal(p.inv[p.perm], np.arange(n))


@COMMON
@given(graph=graphs, shards=st.integers(1, 6))
def test_shard_bounds_are_contiguous_and_balanced(graph, shards):
    p = partition_graph(graph, shards)
    n = graph.num_nodes
    assert p.bounds[0] == 0 and p.bounds[-1] == n
    sizes = np.diff(p.bounds)
    assert sizes.sum() == n
    assert sizes.max() - sizes.min() <= 1
    assert p.num_shards == shards
    # shard_of agrees with the bounds for every permuted node
    for node in range(n):
        shard = p.shard_of(node)
        assert p.bounds[shard] <= node < p.bounds[shard + 1]


@COMMON
@given(graph=graphs, shards=st.integers(2, 6))
def test_permuted_csr_preserves_adjacency(graph, shards):
    """Row ``v`` of the permuted CSR is exactly ``perm[neighbours(inv[v])]``."""
    p = partition_graph(graph, shards)
    indptr, indices = graph.csr_adjacency()
    new_indptr, new_indices = permute_csr(indptr, indices, p.perm, p.inv)
    for new in range(graph.num_nodes):
        old = int(p.inv[new])
        row = set(new_indices[new_indptr[new] : new_indptr[new + 1]].tolist())
        assert row == {int(p.perm[u]) for u in graph.neighbors(old)}


@COMMON
@given(graph=graphs, shards=st.integers(1, 6))
def test_cut_edges_match_brute_force(graph, shards):
    p = partition_graph(graph, shards)
    brute = sum(
        1
        for u, v in graph.edges
        if p.shard_of(int(p.perm[u])) != p.shard_of(int(p.perm[v]))
    )
    assert p.cut_edges == brute


@COMMON
@given(graph=graphs)
def test_bfs_order_visits_components_breadth_first(graph):
    """Every non-root node's BFS position follows one of its neighbours'."""
    indptr, indices = graph.csr_adjacency()
    order = bfs_order(indptr, indices, graph.num_nodes)
    position = np.empty(graph.num_nodes, dtype=np.int64)
    position[order] = np.arange(graph.num_nodes)
    for node in range(graph.num_nodes):
        if graph.degree(node) == 0:
            continue
        first_neighbour = min(position[v] for v in graph.neighbors(node))
        is_component_root = all(position[v] > position[node] for v in graph.neighbors(node))
        assert is_component_root or first_neighbour < position[node]


def test_bfs_partition_cut_is_optimal_on_a_path():
    graph = path_graph(64)
    p = partition_graph(graph, 4)
    assert p.cut_edges == 3  # contiguous quarters of the path


def test_identity_strategy_keeps_original_labels():
    graph = path_graph(10)
    p = partition_graph(graph, 2, strategy="none")
    assert np.array_equal(p.perm, np.arange(10))
    assert p.strategy == "none"


def test_invalid_inputs_raise():
    with pytest.raises(GraphError):
        partition_graph(path_graph(4), 2, strategy="metis")
    with pytest.raises(GraphError):
        shard_bounds(8, 0)


def test_partition_arrays_are_read_only():
    p = partition_graph(path_graph(12), 3)
    for array in (p.perm, p.inv, p.bounds):
        assert not array.flags.writeable


def test_count_cut_edges_counts_undirected_edges_once():
    graph = path_graph(8)
    indptr, indices = graph.csr_adjacency()
    assert count_cut_edges(indptr, indices, shard_bounds(8, 4)) == 3


# ---------------------------------------------------------------------- #
# Counter-rng permutation equivariance — the sharding determinism core    #
# ---------------------------------------------------------------------- #
@COMMON
@given(graph=graphs, seed=st.integers(0, 2**31))
def test_counter_stream_reproduces_runs_on_the_permuted_graph(graph, seed):
    """Permuted graph + inverse node keys == original run, node for node.

    This is the invariant sharded execution rests on: the counter rng draws
    a node's coin from its *original* id, so relabelling the graph and
    handing the engine the inverse permutation as ``rng_node_keys`` must
    reproduce the original execution exactly (modulo the relabelling).
    """
    p = partition_graph(graph, 2)
    original = VectorizedEngine(
        graph, MISProtocol(), seed=seed, rng_mode="counter"
    ).run(max_rounds=500)
    permuted_graph = Graph(
        graph.num_nodes,
        [(int(p.perm[u]), int(p.perm[v])) for u, v in graph.edges],
    )
    permuted = VectorizedEngine(
        permuted_graph,
        MISProtocol(),
        seed=seed,
        rng_mode="counter",
        rng_node_keys=np.asarray(p.inv, dtype=np.uint64),
    ).run(max_rounds=500)
    assert permuted.rounds == original.rounds
    assert permuted.total_messages == original.total_messages
    for node in graph.nodes:
        new = int(p.perm[node])
        assert permuted.final_states[new] == original.final_states[node]
        assert permuted.outputs.get(new) == original.outputs.get(node)
