"""Census tests for the built-in registries.

The registries are the naming layer everything spec-driven rests on — specs,
the CLI's generic ``run`` command and the multiprocess executor all resolve
workloads by name.  These tests pin the full built-in census so a lost
registration (e.g. an import refactor dropping a baseline) fails loudly, and
check the structural invariants every entry must satisfy.
"""

from repro.api import ADVERSARIES, GRAPH_FAMILIES, PROTOCOLS, RunSpec, Simulation

EXPECTED_PROTOCOLS = {
    # The paper's nFSM protocols (spec-runnable).
    "mis",
    "coloring",
    "broadcast",
    # Reductions and stronger-model baselines (custom runners).
    "matching",
    "luby",
    "beeping-sop",
    "cole-vishkin",
    # Centralized references.
    "greedy-mis",
    "greedy-coloring",
    "greedy-matching",
}

EXPECTED_FAMILIES = {
    "path",
    "cycle",
    "star",
    "binary_tree",
    "random_tree",
    "grid",
    "gnp_sparse",
    "gnp_dense",
    "complete",
}

EXPECTED_ADVERSARIES = {
    "synchronous",
    "uniform",
    "exponential",
    "skewed-rates",
    "bursty",
    "targeted-laggard",
}


class TestCensus:
    def test_protocol_census(self):
        assert set(PROTOCOLS.names()) == EXPECTED_PROTOCOLS

    def test_graph_family_census(self):
        assert set(GRAPH_FAMILIES.names()) == EXPECTED_FAMILIES

    def test_adversary_census(self):
        assert set(ADVERSARIES.names()) == EXPECTED_ADVERSARIES


class TestEntryInvariants:
    def test_every_entry_is_runnable_or_has_a_runner(self):
        for name, entry in PROTOCOLS.items():
            assert entry.name == name
            assert entry.spec_runnable or entry.runner is not None

    def test_default_families_are_registered(self):
        for _, entry in PROTOCOLS.items():
            assert entry.default_family in GRAPH_FAMILIES

    def test_adversary_factories_build_named_policies(self):
        for name, factory in ADVERSARIES.items():
            assert factory().name == name


class TestBaselineRunners:
    """Every runner entry executes through the CLI contract:
    ``runner(session, spec, graph) -> (fields, valid, result_or_None)``."""

    def test_runner_entries_produce_valid_solutions(self):
        session = Simulation()
        for name, entry in PROTOCOLS.items():
            if entry.runner is None:
                continue
            spec = RunSpec(protocol=name, nodes=24, seed=3)
            graph = spec.build_graph()
            fields, valid, _ = entry.runner(session, spec, graph)
            assert valid, f"baseline {name!r} produced an invalid solution"
            assert fields, f"baseline {name!r} reported no fields"

    def test_cole_vishkin_uses_three_colors(self):
        entry = PROTOCOLS.get("cole-vishkin")
        spec = RunSpec(protocol="cole-vishkin", nodes=60, seed=1)
        fields, valid, _ = entry.runner(Simulation(), spec, spec.build_graph())
        assert valid
        assert set(fields["colors used"]) <= {0, 1, 2}
