"""Census tests for the built-in registries.

The registries are the naming layer everything spec-driven rests on — specs,
the CLI's generic ``run`` command and the multiprocess executor all resolve
workloads by name.  These tests pin the full built-in census so a lost
registration (e.g. an import refactor dropping a baseline) fails loudly, and
check the structural invariants every entry must satisfy.
"""

from repro.api import (
    ADVERSARIES,
    CHURN_POLICIES,
    GRAPH_FAMILIES,
    PROTOCOLS,
    RunSpec,
    Simulation,
)

EXPECTED_PROTOCOLS = {
    # The paper's nFSM protocols (spec-runnable).
    "mis",
    "coloring",
    "broadcast",
    # Reductions and stronger-model baselines (custom runners).
    "matching",
    "luby",
    "beeping-sop",
    "cole-vishkin",
    # Automata workloads (Section 6 reductions, custom runners).
    "lba-word",
    # Centralized references.
    "greedy-mis",
    "greedy-coloring",
    "greedy-matching",
}

EXPECTED_FAMILIES = {
    "path",
    "cycle",
    "star",
    "binary_tree",
    "random_tree",
    "grid",
    "gnp_sparse",
    "gnp_dense",
    "complete",
    "preferential_attachment",
    "random_geometric",
    "circulant",
    "emulator",
}

EXPECTED_ADVERSARIES = {
    "synchronous",
    "uniform",
    "exponential",
    "skewed-rates",
    "bursty",
    "targeted-laggard",
}

EXPECTED_CHURN_POLICIES = {
    "burst",
    "rewire",
    "drift",
    "events",
}


class TestCensus:
    def test_protocol_census(self):
        assert set(PROTOCOLS.names()) == EXPECTED_PROTOCOLS

    def test_graph_family_census(self):
        assert set(GRAPH_FAMILIES.names()) == EXPECTED_FAMILIES

    def test_adversary_census(self):
        assert set(ADVERSARIES.names()) == EXPECTED_ADVERSARIES

    def test_churn_policy_census(self):
        assert set(CHURN_POLICIES.names()) == EXPECTED_CHURN_POLICIES


class TestEntryInvariants:
    def test_every_entry_is_runnable_or_has_a_runner(self):
        for name, entry in PROTOCOLS.items():
            assert entry.name == name
            assert entry.spec_runnable or entry.runner is not None

    def test_default_families_are_registered(self):
        for _, entry in PROTOCOLS.items():
            assert entry.default_family in GRAPH_FAMILIES

    def test_adversary_factories_build_named_policies(self):
        for name, factory in ADVERSARIES.items():
            assert factory().name == name

    def test_churn_factories_build_named_policies(self):
        for name, factory in CHURN_POLICIES.items():
            assert factory().name == name

    def test_new_families_generate_connected_sized_graphs(self):
        for name in ("preferential_attachment", "random_geometric", "circulant"):
            graph = GRAPH_FAMILIES.get(name)(20, 5)
            assert graph.num_nodes == 20
            assert graph.num_edges >= 19  # at least tree-dense: connected

    def test_emulator_family_sparsifies_its_base(self):
        base = GRAPH_FAMILIES.get("gnp_dense")(24, 9)
        emulated = GRAPH_FAMILIES.get("emulator")(24, 9, base="gnp_dense")
        assert emulated.num_nodes == base.num_nodes
        assert emulated.num_edges <= base.num_edges


class TestBaselineRunners:
    """Every runner entry executes through the CLI contract:
    ``runner(session, spec, graph) -> (fields, valid, result_or_None)``."""

    def test_runner_entries_produce_valid_solutions(self):
        session = Simulation()
        for name, entry in PROTOCOLS.items():
            if entry.runner is None:
                continue
            spec = RunSpec(protocol=name, nodes=24, seed=3)
            graph = spec.build_graph()
            fields, valid, _ = entry.runner(session, spec, graph)
            assert valid, f"baseline {name!r} produced an invalid solution"
            assert fields, f"baseline {name!r} reported no fields"

    def test_cole_vishkin_uses_three_colors(self):
        entry = PROTOCOLS.get("cole-vishkin")
        spec = RunSpec(protocol="cole-vishkin", nodes=60, seed=1)
        fields, valid, _ = entry.runner(Simulation(), spec, spec.build_graph())
        assert valid
        assert set(fields["colors used"]) <= {0, 1, 2}

    def test_lba_word_runner_decides_both_verdicts(self):
        entry = PROTOCOLS.get("lba-word")
        session = Simulation()
        for word, expected in (("0110", True), ("0111", False)):
            spec = RunSpec(
                protocol="lba-word",
                nodes=8,
                seed=5,
                protocol_params={"language": "parity", "word": word},
            )
            fields, valid, _ = entry.runner(session, spec, spec.build_graph())
            assert valid  # verdict matches the reference predicate
            assert fields["verdict"] is expected
