"""Unit tests for the linear bounded automaton substrate and sample languages."""

import random

import pytest

from repro.automata.lba import (
    LEFT,
    LEFT_MARKER,
    RIGHT,
    RIGHT_MARKER,
    STAY,
    LBATransition,
    LinearBoundedAutomaton,
)
from repro.automata.languages import SAMPLE_LANGUAGES, palindrome_lba, parity_lba
from repro.core.errors import AutomatonError


def simple_machine(**overrides):
    spec = dict(
        name="sink",
        states=["scan", "accept", "reject"],
        input_alphabet=["a"],
        tape_alphabet=["a"],
        transitions={
            ("scan", "a"): [("scan", "a", RIGHT)],
            ("scan", RIGHT_MARKER): [("accept", RIGHT_MARKER, STAY)],
        },
        initial_state="scan",
        accept_states=["accept"],
        reject_states=["reject"],
    )
    spec.update(overrides)
    return LinearBoundedAutomaton(**spec)


class TestValidation:
    def test_valid_machine_builds(self):
        machine = simple_machine()
        assert machine.is_deterministic()

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(AutomatonError):
            simple_machine(initial_state="ghost")

    def test_unknown_halting_state_rejected(self):
        with pytest.raises(AutomatonError):
            simple_machine(accept_states=["ghost"])

    def test_input_alphabet_must_be_in_tape_alphabet(self):
        with pytest.raises(AutomatonError):
            simple_machine(input_alphabet=["a", "b"])

    def test_markers_are_reserved(self):
        with pytest.raises(AutomatonError):
            simple_machine(tape_alphabet=["a", LEFT_MARKER])

    def test_transition_from_unknown_state_rejected(self):
        with pytest.raises(AutomatonError):
            simple_machine(transitions={("ghost", "a"): [("scan", "a", RIGHT)]})

    def test_transition_to_unknown_state_rejected(self):
        with pytest.raises(AutomatonError):
            simple_machine(transitions={("scan", "a"): [("ghost", "a", RIGHT)]})

    def test_transition_writing_unknown_symbol_rejected(self):
        with pytest.raises(AutomatonError):
            simple_machine(transitions={("scan", "a"): [("scan", "z", RIGHT)]})

    def test_empty_option_set_rejected(self):
        with pytest.raises(AutomatonError):
            simple_machine(transitions={("scan", "a"): []})

    def test_invalid_head_move_rejected(self):
        with pytest.raises(AutomatonError):
            LBATransition("scan", "a", 5)


class TestExecution:
    def test_accepting_run(self):
        run = simple_machine().run("aaa")
        assert run.accepted is True
        assert run.halted
        assert run.steps == 4  # three cells plus the right marker

    def test_rejecting_on_undefined_configuration(self):
        machine = simple_machine(transitions={("scan", "a"): [("scan", "a", RIGHT)]})
        run = machine.run("a")
        assert run.accepted is False

    def test_input_symbols_are_validated(self):
        with pytest.raises(AutomatonError):
            simple_machine().run("ab")

    def test_max_steps_yields_undecided(self):
        looping = simple_machine(
            transitions={
                ("scan", "a"): [("scan", "a", STAY)],
            }
        )
        run = looping.run("a", max_steps=10)
        assert run.accepted is None
        assert not run.halted

    def test_space_usage_is_bounded_by_the_tape(self):
        run = palindrome_lba().run("abba")
        assert run.space_used <= 4 + 2  # input cells plus the two markers

    def test_history_recording(self):
        run = simple_machine().run("aa", record_history=True)
        assert len(run.history) == run.steps

    def test_decides_helper(self):
        assert simple_machine().decides("aaaa") is True

    def test_markers_cannot_be_overwritten(self):
        vandal = LinearBoundedAutomaton(
            name="vandal",
            states=["scan", "accept"],
            input_alphabet=["a"],
            tape_alphabet=["a"],
            transitions={("scan", LEFT_MARKER): [("accept", "a", STAY)],
                         ("scan", "a"): [("scan", "a", LEFT)]},
            initial_state="scan",
            accept_states=["accept"],
        )
        with pytest.raises(AutomatonError):
            vandal.run("a")

    def test_randomized_machines_draw_from_the_option_set(self):
        coin = LinearBoundedAutomaton(
            name="coin",
            states=["start", "accept", "reject"],
            input_alphabet=["a"],
            tape_alphabet=["a"],
            transitions={("start", "a"): [("accept", "a", STAY), ("reject", "a", STAY)]},
            initial_state="start",
            accept_states=["accept"],
            reject_states=["reject"],
        )
        assert not coin.is_deterministic()
        outcomes = {coin.run("a", seed=seed).accepted for seed in range(20)}
        assert outcomes == {True, False}


class TestSampleLanguages:
    @pytest.mark.parametrize("name", sorted(SAMPLE_LANGUAGES))
    def test_machines_agree_with_their_reference_predicates(self, name):
        factory, reference, alphabet = SAMPLE_LANGUAGES[name]
        machine = factory()
        rng = random.Random(hash(name) % (2**32))
        for trial in range(120):
            word = [rng.choice(alphabet) for _ in range(rng.randint(0, 14))]
            assert machine.decides(word, seed=trial) == reference(word), word

    def test_parity_edge_cases(self):
        machine = parity_lba()
        assert machine.decides("") is True
        assert machine.decides("1") is False
        assert machine.decides("11") is True

    def test_palindrome_edge_cases(self):
        machine = palindrome_lba()
        assert machine.decides("") is True
        assert machine.decides("a") is True
        assert machine.decides("ab") is False
        assert machine.decides("abba") is True
        assert machine.decides("aba") is True
        assert machine.decides("abab") is False
