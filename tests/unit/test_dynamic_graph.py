"""Unit tests for the dynamic-graph environment core.

Covers the seed-deterministic churn schedules (counter-based draws, event
generation), the :class:`DynamicGraph` snapshot lifecycle (versioning, event
application and skipping, node parking/restoring) and the CSR cache contract
the snapshots rely on.
"""

import pytest

from repro.core.errors import GraphError
from repro.graphs.dynamic import (
    BurstChurn,
    ChurnEvent,
    DynamicGraph,
    EventListChurn,
    GeometricDriftChurn,
    PeriodicRewireChurn,
    derive_churn_seed,
    derive_segment_seed,
)
from repro.graphs.generators import cycle_graph, gnp_random_graph
from repro.graphs.graph import Graph

ALL_POLICIES = (
    BurstChurn(flips=3, disturbances=3),
    PeriodicRewireChurn(rewires=2, disturbances=3),
    GeometricDriftChurn(disturbances=3),
    EventListChurn(events=[[("remove", 0, 1)], [("add", 0, 1)]]),
)


class TestSeedDerivation:
    def test_churn_seed_is_deterministic_and_seed_sensitive(self):
        assert derive_churn_seed(7) == derive_churn_seed(7)
        assert derive_churn_seed(7) != derive_churn_seed(8)
        # Unseeded specs still get a fixed, reproducible schedule key.
        assert derive_churn_seed(None) == derive_churn_seed(None)

    def test_segment_zero_keeps_the_spec_seed(self):
        assert derive_segment_seed(123, 0) == 123
        assert derive_segment_seed(None, 3) is None

    def test_later_segments_get_distinct_derived_seeds(self):
        seeds = [derive_segment_seed(9, k) for k in range(5)]
        assert len(set(seeds)) == len(seeds)


class TestChurnEvent:
    def test_edge_events_normalise_endpoint_order(self):
        assert ChurnEvent("add", 5, 2).to_tuple() == ("add", 2, 5)

    def test_node_events_take_a_single_node(self):
        assert ChurnEvent("node_off", 4).to_tuple() == ("node_off", 4)
        with pytest.raises(GraphError):
            ChurnEvent("node_off", 4, 5)

    def test_self_loops_and_unknown_kinds_are_rejected(self):
        with pytest.raises(GraphError):
            ChurnEvent("add", 3, 3)
        with pytest.raises(GraphError):
            ChurnEvent("teleport", 1, 2)


class TestScheduleDeterminism:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_same_seed_same_event_sequence(self, policy):
        base = gnp_random_graph(24, 0.2, seed=3)

        def replay():
            dyn = DynamicGraph(base, policy.start(base.num_nodes, 42))
            trail = []
            for _ in range(dyn.num_disturbances):
                trail.append(tuple(e.to_tuple() for e in dyn.advance()))
            return trail, tuple(dyn.snapshot.edges)

        assert replay() == replay()

    def test_different_seeds_diverge(self):
        base = gnp_random_graph(24, 0.2, seed=3)
        policy = BurstChurn(flips=4, disturbances=4)
        trails = []
        for key in (1, 2):
            dyn = DynamicGraph(base, policy.start(base.num_nodes, key))
            for _ in range(dyn.num_disturbances):
                dyn.advance()
            trails.append(tuple(dyn.snapshot.edges))
        assert trails[0] != trails[1]

    def test_uniform_batch_matches_scalar_bitwise(self):
        schedule = BurstChurn().start(16, 99)
        for disturbance in range(3):
            scalar = [schedule.uniform(disturbance, i) for i in range(32)]
            assert schedule.uniform_batch(disturbance, range(32)) == scalar


class TestDynamicGraph:
    def test_snapshots_are_versioned_and_immutable(self):
        base = cycle_graph(8)
        dyn = DynamicGraph(base, BurstChurn(flips=2, disturbances=2).start(8, 5))
        first = dyn.snapshot
        assert dyn.version == 0
        # Version 0 shares the (immutable) base graph; churn never mutates it.
        assert tuple(first.edges) == tuple(base.edges)
        dyn.advance()
        assert dyn.version == 1
        assert dyn.snapshot is not first
        assert tuple(base.edges) == tuple(cycle_graph(8).edges)

    def test_event_list_applies_and_skips(self):
        base = Graph(4, [(0, 1), (1, 2)])
        policy = EventListChurn(
            events=[
                # (2,3) applies; removing the absent (0,3) is skipped;
                # re-adding the present (0,1) is skipped.
                [("add", 2, 3), ("remove", 0, 3), ("add", 0, 1)],
            ]
        )
        dyn = DynamicGraph(base, policy.start(4, 0))
        applied = dyn.advance()
        assert [e.to_tuple() for e in applied] == [("add", 2, 3)]
        assert dyn.last_affected == frozenset({2, 3})
        assert dyn.has_edge(2, 3)

    def test_node_off_parks_and_node_on_restores(self):
        base = Graph(4, [(0, 1), (1, 2), (2, 3)])
        policy = EventListChurn(events=[[("node_off", 1)], [("node_on", 1)]])
        dyn = DynamicGraph(base, policy.start(4, 0))
        dyn.advance()
        assert dyn.off_nodes == (1,)
        assert not dyn.has_edge(0, 1) and not dyn.has_edge(1, 2)
        assert dyn.has_edge(2, 3)
        dyn.advance()
        assert dyn.off_nodes == ()
        assert sorted(dyn.snapshot.edges) == [(0, 1), (1, 2), (2, 3)]

    def test_advance_past_schedule_end_raises(self):
        base = cycle_graph(6)
        dyn = DynamicGraph(base, BurstChurn(disturbances=1).start(6, 1))
        dyn.advance()
        with pytest.raises(GraphError):
            dyn.advance()

    def test_remove_mode_only_removes(self):
        base = gnp_random_graph(20, 0.3, seed=8)
        policy = BurstChurn(flips=3, disturbances=3, mode="remove")
        dyn = DynamicGraph(base, policy.start(20, 11))
        previous = set(base.edges)
        for _ in range(dyn.num_disturbances):
            for event in dyn.advance():
                assert event.kind == "remove"
            current = set(dyn.snapshot.edges)
            assert current <= previous
            previous = current


class TestCsrCache:
    def test_csr_rebuilds_fresh_equal_arrays_after_invalidate(self):
        graph = gnp_random_graph(16, 0.3, seed=2)
        indptr1, indices1 = graph.csr_adjacency()
        assert graph.csr_adjacency()[0] is indptr1  # cached
        graph.invalidate_csr()
        indptr2, indices2 = graph.csr_adjacency()
        assert indptr2 is not indptr1  # rebuilt, not the stale buffer
        assert list(indptr2) == list(indptr1)
        assert list(indices2) == list(indices1)

    def test_snapshots_never_share_stale_csr(self):
        # Regression: each DynamicGraph snapshot is a fresh Graph, so the
        # CSR an engine reads always describes that snapshot's edges.
        base = gnp_random_graph(16, 0.3, seed=4)
        dyn = DynamicGraph(base, BurstChurn(flips=4, disturbances=2).start(16, 7))
        before = dyn.snapshot
        before.csr_adjacency()
        dyn.advance()
        after = dyn.snapshot
        indptr, indices = after.csr_adjacency()
        degree = {
            v: int(indptr[v + 1]) - int(indptr[v]) for v in range(after.num_nodes)
        }
        expected = {v: len(after.neighbors(v)) for v in range(after.num_nodes)}
        assert degree == expected
