"""Property-based tests of the paper's protocols on random instances.

These are the strongest correctness checks in the suite: hypothesis generates
arbitrary graphs (for MIS) and arbitrary trees (for coloring), arbitrary
seeds, and the invariants of Sections 4 and 5 must hold on every single run.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import tree_from_pruefer
from repro.graphs.graph import Graph
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.protocols.matching import maximal_matching_via_line_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_graphs(draw, max_nodes=14):
    n = draw(st.integers(1, max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)))
    else:
        edges = []
    return Graph(n, edges)


@st.composite
def random_trees(draw, max_nodes=20):
    n = draw(st.integers(1, max_nodes))
    if n <= 2:
        return Graph(n, [(0, 1)] if n == 2 else [])
    pruefer = draw(st.lists(st.integers(0, n - 1), min_size=n - 2, max_size=n - 2))
    return tree_from_pruefer(pruefer)


@st.composite
def random_forests(draw, max_nodes=18):
    """A forest obtained by deleting a few edges of a random tree."""
    tree = draw(random_trees(max_nodes=max_nodes))
    if tree.num_edges == 0:
        return tree
    keep_mask = draw(
        st.lists(st.booleans(), min_size=tree.num_edges, max_size=tree.num_edges)
    )
    kept = [edge for edge, keep in zip(tree.edges, keep_mask) if keep]
    return Graph(tree.num_nodes, kept)


class TestMISInvariants:
    @given(graph=random_graphs(), seed=st.integers(0, 10_000))
    @SLOW
    def test_output_is_always_a_maximal_independent_set(self, graph, seed):
        result = run_synchronous(graph, MISProtocol(), seed=seed, max_rounds=50_000)
        assert result.reached_output
        assert is_maximal_independent_set(graph, mis_from_result(result))

    @given(graph=random_graphs(), seed=st.integers(0, 10_000))
    @SLOW
    def test_every_node_produces_a_boolean_output(self, graph, seed):
        result = run_synchronous(graph, MISProtocol(), seed=seed, max_rounds=50_000)
        assert set(result.outputs) == set(graph.nodes)
        assert all(isinstance(value, bool) for value in result.outputs.values())


class TestColoringInvariants:
    @given(tree=random_trees(), seed=st.integers(0, 10_000))
    @SLOW
    def test_trees_get_a_proper_3_coloring(self, tree, seed):
        result = run_synchronous(tree, TreeColoringProtocol(), seed=seed, max_rounds=50_000)
        assert result.reached_output
        colors = coloring_from_result(result)
        assert is_proper_coloring(tree, colors)
        assert set(colors.values()) <= {1, 2, 3}

    @given(forest=random_forests(), seed=st.integers(0, 10_000))
    @SLOW
    def test_forests_get_a_proper_3_coloring(self, forest, seed):
        result = run_synchronous(forest, TreeColoringProtocol(), seed=seed, max_rounds=50_000)
        assert result.reached_output
        assert is_proper_coloring(forest, coloring_from_result(result))


class TestMatchingInvariants:
    @given(graph=random_graphs(max_nodes=10), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_line_graph_reduction_yields_a_maximal_matching(self, graph, seed):
        matching, _ = maximal_matching_via_line_graph(graph, seed=seed)
        assert is_maximal_matching(graph, matching)
