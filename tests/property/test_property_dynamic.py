"""Property-based tests for the dynamic environment (hypothesis).

Pins the two contracts everything dynamic rests on: the churn schedule's
counter-based draws are pure functions of ``(key, disturbance, index)`` with
scalar == batch bitwise, and a ``RunSpec`` with churn fields survives the
dict/JSON round trip unchanged.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunSpec
from repro.graphs.dynamic import (
    BurstChurn,
    DynamicGraph,
    derive_churn_seed,
    derive_segment_seed,
)
from repro.graphs.generators import gnp_random_graph

keys = st.integers(min_value=0, max_value=2**64 - 1)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestCounterDraws:
    @given(key=keys, disturbance=st.integers(0, 50), count=st.integers(1, 64))
    @settings(max_examples=60)
    def test_batch_equals_scalar_bitwise(self, key, disturbance, count):
        schedule = BurstChurn().start(16, key)
        scalar = [schedule.uniform(disturbance, i) for i in range(count)]
        assert schedule.uniform_batch(disturbance, range(count)) == scalar

    @given(key=keys, disturbance=st.integers(0, 50), index=st.integers(0, 1000))
    @settings(max_examples=60)
    def test_draws_are_pure_and_in_unit_interval(self, key, disturbance, index):
        a = BurstChurn().start(16, key)
        b = BurstChurn().start(16, key)
        value = a.uniform(disturbance, index)
        assert value == b.uniform(disturbance, index)
        assert 0.0 <= value < 1.0


class TestScheduleDeterminism:
    @given(key=keys, graph_seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_same_key_replays_the_same_disturbance_trail(self, key, graph_seed):
        base = gnp_random_graph(18, 0.25, seed=graph_seed)
        policy = BurstChurn(flips=3, disturbances=3)

        def trail():
            dyn = DynamicGraph(base, policy.start(base.num_nodes, key))
            events = []
            for _ in range(dyn.num_disturbances):
                events.append(tuple(e.to_tuple() for e in dyn.advance()))
            return events, tuple(dyn.snapshot.edges)

        assert trail() == trail()


class TestSeedDerivation:
    @given(seed=seeds)
    def test_churn_seed_is_a_pure_function_of_the_spec_seed(self, seed):
        assert derive_churn_seed(seed) == derive_churn_seed(seed)

    @given(seed=seeds, segments=st.integers(1, 8))
    def test_segment_seeds_are_distinct_and_start_at_the_spec_seed(
        self, seed, segments
    ):
        derived = [derive_segment_seed(seed, k) for k in range(segments + 1)]
        assert derived[0] == seed
        assert len(set(derived)) == len(derived)


churn_params = st.fixed_dictionaries(
    {},
    optional={
        "flips": st.integers(1, 8),
        "disturbances": st.integers(0, 6),
        "mode": st.sampled_from(["flip", "remove", "add"]),
    },
)


class TestSpecRoundTrip:
    @given(
        seed=seeds,
        churn_seed=st.one_of(st.none(), seeds),
        params=churn_params,
    )
    @settings(max_examples=60)
    def test_dynamic_spec_survives_dict_and_json_round_trips(
        self, seed, churn_seed, params
    ):
        spec = RunSpec(
            protocol="mis",
            nodes=24,
            seed=seed,
            environment="dynamic",
            churn="burst",
            churn_seed=churn_seed,
            churn_params=params,
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @given(seed=seeds, params=churn_params)
    @settings(max_examples=30)
    def test_round_trip_preserves_the_built_schedule(self, seed, params):
        spec = RunSpec(
            protocol="mis",
            nodes=24,
            seed=seed,
            environment="dynamic",
            churn="burst",
            churn_params=params,
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        a = spec.build_churn().start(24, derive_churn_seed(seed))
        b = rebuilt.build_churn().start(24, derive_churn_seed(seed))
        assert a.num_disturbances == b.num_disturbances
        assert [a.uniform(0, i) for i in range(8)] == [
            b.uniform(0, i) for i in range(8)
        ]
