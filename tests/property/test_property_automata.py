"""Property-based tests for the Section 6 automata machinery."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.languages import (
    balanced_parentheses_lba,
    balanced_parentheses_reference,
    palindrome_lba,
    palindrome_reference,
    parity_lba,
    parity_reference,
)
from repro.automata.lba_to_nfsm import decide_word_on_path
from repro.automata.nfsm_to_lba import simulate_with_linear_space
from repro.graphs.graph import Graph
from repro.protocols.mis import MISProtocol
from repro.scheduling.sync_engine import run_synchronous

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSequentialMachines:
    @given(word=st.lists(st.sampled_from("01"), max_size=20), seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_parity_machine_matches_reference(self, word, seed):
        assert parity_lba().decides(word, seed=seed) == parity_reference(word)

    @given(word=st.lists(st.sampled_from("ab"), max_size=16))
    @settings(max_examples=80, deadline=None)
    def test_palindrome_machine_matches_reference(self, word):
        assert palindrome_lba().decides(word) == palindrome_reference(word)

    @given(word=st.lists(st.sampled_from("()"), max_size=16))
    @settings(max_examples=80, deadline=None)
    def test_balanced_parentheses_machine_matches_reference(self, word):
        assert balanced_parentheses_lba().decides(word) == balanced_parentheses_reference(word)


class TestPathSimulation:
    @given(word=st.lists(st.sampled_from("01"), max_size=8), seed=st.integers(0, 1000))
    @SLOW
    def test_parity_on_a_path_matches_reference(self, word, seed):
        verdict, _ = decide_word_on_path(parity_lba(), word, seed=seed)
        assert verdict == parity_reference(word)

    @given(word=st.lists(st.sampled_from("ab"), max_size=6), seed=st.integers(0, 1000))
    @SLOW
    def test_palindromes_on_a_path_match_reference(self, word, seed):
        verdict, _ = decide_word_on_path(palindrome_lba(), word, seed=seed)
        assert verdict == palindrome_reference(word)


@st.composite
def random_graphs(draw, max_nodes=10):
    n = draw(st.integers(1, max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible))) if possible else []
    return Graph(n, edges)


class TestLinearSpaceSimulation:
    @given(graph=random_graphs(), seed=st.integers(0, 10_000))
    @SLOW
    def test_tape_simulation_is_bit_identical_to_the_engine(self, graph, seed):
        """Lemma 6.1: the linear-space simulation reproduces the execution."""
        engine_result = run_synchronous(graph, MISProtocol(), seed=seed, max_rounds=50_000)
        tape_result = simulate_with_linear_space(graph, MISProtocol(), seed=seed, max_rounds=50_000)
        assert tape_result.final_states == engine_result.final_states
        assert tape_result.rounds == engine_result.rounds

    @given(graph=random_graphs(), seed=st.integers(0, 10_000))
    @SLOW
    def test_space_accounting_is_constant_per_entry(self, graph, seed):
        result = simulate_with_linear_space(graph, MISProtocol(), seed=seed, max_rounds=50_000)
        assert result.metadata["space_report"].extra_cells_per_entry <= 2.0
