"""Property-based tests for the core data structures (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import Alphabet, BoundingParameter, Observation
from repro.core.network import PortTable
from repro.graphs.graph import Graph

bounding_params = st.integers(min_value=1, max_value=6).map(BoundingParameter)


class TestOneTwoManyCounting:
    @given(b=st.integers(1, 8), x=st.integers(0, 100))
    def test_saturation_is_idempotent(self, b, x):
        f = BoundingParameter(b)
        assert f(f(x)) == f(x)

    @given(b=st.integers(1, 8), x=st.integers(0, 100), y=st.integers(0, 100))
    def test_saturating_add_matches_the_paper_identity(self, b, x, y):
        """f_b(x + y) = min(f_b(x) + f_b(y), b) — the identity Section 3.1 uses."""
        f = BoundingParameter(b)
        assert f.saturating_add(x, y) == f(x + y)

    @given(b=st.integers(1, 8), xs=st.lists(st.integers(0, 20), min_size=1, max_size=10))
    def test_saturated_folding_is_order_independent(self, b, xs):
        f = BoundingParameter(b)
        total = 0
        for x in xs:
            total = min(total + f(x), b)
        assert total == f(sum(xs))

    @given(b=st.integers(1, 8), x=st.integers(0, 100), y=st.integers(0, 100))
    def test_monotonicity(self, b, x, y):
        f = BoundingParameter(b)
        if x <= y:
            assert f(x) <= f(y)


class TestObservations:
    @given(
        counts=st.lists(st.integers(0, 30), min_size=1, max_size=6),
        b=st.integers(1, 5),
    )
    def test_port_contents_roundtrip(self, counts, b):
        """Building an observation from explicit port contents matches the counts."""
        letters = [f"L{i}" for i in range(len(counts))]
        alphabet = Alphabet(letters)
        bounding = BoundingParameter(b)
        ports = [letter for letter, count in zip(letters, counts) for _ in range(count)]
        observation = Observation.from_port_contents(alphabet, ports, bounding)
        for letter, count in zip(letters, counts):
            assert observation[letter] == bounding(count)

    @given(counts=st.lists(st.integers(0, 5), min_size=2, max_size=6))
    def test_as_tuple_is_stable_and_hashable(self, counts):
        alphabet = Alphabet([f"L{i}" for i in range(len(counts))])
        observation = Observation(alphabet, counts)
        assert hash(observation) == hash(Observation(alphabet, counts))
        assert observation.as_tuple() == tuple(counts)


@st.composite
def graphs(draw, max_nodes=12):
    n = draw(st.integers(1, max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)) if possible else st.just([]))
    return Graph(n, edges)


class TestPortTableProperties:
    @given(graph=graphs(), data=st.data())
    @settings(max_examples=40)
    def test_port_always_holds_the_last_delivered_letter(self, graph, data):
        ports = PortTable(graph, initial_letter="init")
        letters = ["a", "b", "c"]
        last_delivery: dict[tuple[int, int], str] = {}
        deliveries = data.draw(
            st.lists(
                st.tuples(st.integers(0, graph.num_nodes - 1), st.sampled_from(letters)),
                max_size=30,
            )
        )
        for sender, letter in deliveries:
            neighbours = graph.neighbors(sender)
            if not neighbours:
                continue
            ports.broadcast(sender, letter)
            for receiver in neighbours:
                last_delivery[(receiver, sender)] = letter
        for node in graph.nodes:
            for neighbour in graph.neighbors(node):
                expected = last_delivery.get((node, neighbour), "init")
                assert ports.get(node, neighbour) == expected

    @given(graph=graphs())
    @settings(max_examples=30)
    def test_snapshot_shape_matches_degrees(self, graph):
        ports = PortTable(graph, initial_letter="x")
        snapshot = ports.snapshot()
        assert len(snapshot) == graph.num_nodes
        for node in graph.nodes:
            assert len(snapshot[node]) == graph.degree(node)


class TestGraphProperties:
    @given(graph=graphs())
    @settings(max_examples=50)
    def test_handshake_lemma(self, graph):
        assert sum(graph.degree(v) for v in graph.nodes) == 2 * graph.num_edges

    @given(graph=graphs())
    @settings(max_examples=50)
    def test_line_graph_node_count_equals_edge_count(self, graph):
        line, edge_of_node = graph.line_graph()
        assert line.num_nodes == graph.num_edges
        assert len(edge_of_node) == graph.num_edges

    @given(graph=graphs())
    @settings(max_examples=50)
    def test_subgraph_of_all_nodes_is_the_graph_itself(self, graph):
        assert graph.subgraph(graph.nodes) == graph
