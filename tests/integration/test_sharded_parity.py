"""Sharded execution parity matrix and shared-memory hygiene.

The sharded backend's headline contract is *bitwise seed-identity*: for any
shard count ``>= 1``, a sharded run produces exactly the result of the
unsharded vectorized engine on the counter rng stream — same final states,
same outputs, same round and message counts, node for node.  This module
pins that contract across the full matrix of registered protocols ×
registered graph families × shard counts × seeds, and checks that no
``/dev/shm`` segment outlives an engine — including when a worker process
is killed mid-run.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

np_available = np  # imported eagerly; engines require numpy anyway

from repro.api import RunSpec, Simulation
from repro.core.errors import ExecutionError
from repro.graphs.generators import path_graph
from repro.protocols.mis import MISProtocol
from repro.scheduling.sharded_engine import (
    SEGMENT_PREFIX,
    ShardedVectorizedEngine,
    sharding_supported,
)
from repro.scheduling.vectorized_engine import VectorizedEngine

pytestmark = pytest.mark.skipif(
    not sharding_supported(), reason="platform lacks POSIX shared memory"
)

PROTOCOL_SPECS = {
    "mis": {},
    "coloring": {},
    "broadcast": {"inputs": {"source": 0}},
}
FAMILIES = ["path", "random_tree", "gnp_sparse"]
SHARD_COUNTS = [1, 2, 4]
SEEDS = [0, 7, 1234]
NODES = 24
#: Round budget for the matrix cells.  Some protocol × family pairings never
#: terminate (coloring needs a tree; broadcast needs a connected graph), and
#: parity on the *truncated* execution is just as strong a check as parity on
#: a terminated one — without paying 100k barrier-synced rounds for it.
MATRIX_MAX_ROUNDS = 256


def _leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_*")


def _run(spec: RunSpec, session=None):
    session = session or Simulation()
    return session.simulate(spec, raise_on_timeout=False)


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_SPECS))
@pytest.mark.parametrize("family", FAMILIES)
def test_sharded_matches_unsharded_counter_run(protocol, family):
    """The full shards × seeds matrix for one protocol × family cell."""
    session = Simulation()
    for seed in SEEDS:
        base = RunSpec(
            protocol=protocol,
            nodes=NODES,
            graph=family,
            seed=seed,
            max_rounds=MATRIX_MAX_ROUNDS,
            **PROTOCOL_SPECS[protocol],
        )
        reference = _run(base.replace(shards=1), session)
        assert reference.metadata["shard_count"] == 1
        for shards in SHARD_COUNTS[1:]:
            sharded = _run(base.replace(shards=shards), session)
            assert sharded.summary_fields() == reference.summary_fields(), (
                f"{protocol}/{family}/seed={seed}: shards={shards} diverged "
                f"from the unsharded counter run"
            )
            assert sharded.metadata["backend_mode"] == "sharded"
            assert sharded.metadata["shard_count"] == shards
            assert sharded.metadata["halo_bytes_per_round"] == (
                2 * sharded.metadata["cut_edges"] * 8
            )
    assert not _leaked_segments()


def test_shard_count_capped_at_node_count():
    result = _run(RunSpec(protocol="mis", nodes=3, seed=1, shards=16))
    reference = _run(RunSpec(protocol="mis", nodes=3, seed=1, shards=1))
    assert result.summary_fields() == reference.summary_fields()
    assert result.metadata["shard_count"] <= 3
    assert not _leaked_segments()


def test_sharded_engine_close_is_idempotent_and_clean():
    graph = path_graph(32)
    engine = ShardedVectorizedEngine(graph, MISProtocol(), seed=3, shards=2)
    result = engine.run(max_rounds=1000)
    assert result.reached_output
    engine.close()
    engine.close()  # second close must be a no-op
    assert not _leaked_segments()


def test_context_manager_releases_segments():
    with ShardedVectorizedEngine(path_graph(20), MISProtocol(), seed=5, shards=2) as engine:
        engine.run(max_rounds=1000)
    assert not _leaked_segments()


def test_worker_crash_surfaces_and_leaks_nothing():
    """SIGKILLing a shard worker aborts the run loudly, not with a hang."""
    engine = ShardedVectorizedEngine(
        path_graph(64), MISProtocol(), seed=9, shards=2, barrier_timeout=20.0
    )
    try:
        engine.step_round()  # starts the workers
        victim = engine._workers[0]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while victim.exitcode is None and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ExecutionError, match="shard worker"):
            for _ in range(1000):
                engine.step_round()
    finally:
        engine.close()
    assert not _leaked_segments()


def test_lazy_protocol_falls_back_to_unsharded_counter_run():
    """A lazy-tabulation workload cannot shard; the fallback is recorded."""
    from repro.compilers.multiquery import lower_to_single_query
    from repro.scheduling.sync_engine import _run_synchronous

    lowered = lower_to_single_query(MISProtocol())
    assert lowered.tabulation_hint() == "lazy"
    result = _run_synchronous(
        path_graph(16), lowered, seed=2, backend="auto", shards=4,
        raise_on_timeout=False,
    )
    assert result.metadata["shard_count"] == 1
    assert result.metadata["backend_mode"] == "lazy"
    assert "shards=4 requested but" in result.metadata["backend_reason"]
    assert not _leaked_segments()


def test_sharded_runs_are_deterministic_across_calls():
    spec = RunSpec(protocol="mis", nodes=NODES, graph="gnp_sparse", seed=42, shards=4)
    first = _run(spec)
    second = _run(spec)
    assert first.summary_fields() == second.summary_fields()
    assert not _leaked_segments()


def test_counter_stream_differs_from_legacy_serial_stream(monkeypatch):
    """shards= selects a *different* (but internally consistent) rng stream."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)  # a true legacy run
    legacy = _run(RunSpec(protocol="mis", nodes=NODES, graph="gnp_sparse", seed=11))
    counter = _run(
        RunSpec(protocol="mis", nodes=NODES, graph="gnp_sparse", seed=11, shards=1)
    )
    # Both are valid MIS executions; equality of the full summary would mean
    # the streams coincided — possible in principle, vanishingly unlikely.
    assert legacy.reached_output and counter.reached_output
    assert "shard_count" not in legacy.metadata
    assert counter.metadata["shard_count"] == 1


def test_sharded_engine_direct_parity_with_vectorized_counter_engine():
    """Engine-level check without the session: same arrays, same everything."""
    graph = path_graph(48)
    reference = VectorizedEngine(
        graph, MISProtocol(), seed=17, rng_mode="counter"
    ).run(max_rounds=1000)
    engine = ShardedVectorizedEngine(graph, MISProtocol(), seed=17, shards=3)
    try:
        sharded = engine.run(max_rounds=1000)
    finally:
        engine.close()
    assert sharded.summary_fields() == reference.summary_fields()
    assert not _leaked_segments()
