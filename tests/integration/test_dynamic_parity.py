"""Cross-backend and store-replay parity of the dynamic environment.

The acceptance bar of the dynamic subsystem: a seeded dynamic run is
bitwise-reproducible across backends — identical final configuration AND
identical per-disturbance re-convergence metadata — and a warm result store
replays a whole churn sweep with zero engine executions.
"""

import pytest

from repro.api import RunSpec, Simulation
from repro.core import counters
from repro.scheduling.sharded_engine import sharding_supported
from repro.protocols.coloring import coloring_from_result
from repro.protocols.mis import mis_from_result
from repro.verification.checkers import (
    is_maximal_independent_set,
    is_proper_coloring,
)

DYNAMIC_METADATA_KEYS = (
    "churn_policy",
    "disturbances",
    "initial_rounds",
    "reconvergence_rounds",
    "churn_events",
    "restart_counts",
)

# Forest-preserving churn for the tree protocol, flip churn for MIS.
WORKLOADS = [
    ("mis", "gnp_sparse", "burst", {"flips": 3, "disturbances": 3}),
    ("mis", "random_tree", "rewire", {"rewires": 2, "disturbances": 3}),
    ("mis", "gnp_sparse", "drift", {}),
    ("coloring", "random_tree", "burst", {"flips": 2, "disturbances": 2, "mode": "remove"}),
]


def _spec(protocol, family, churn, params, seed, backend="auto"):
    return RunSpec(
        protocol=protocol,
        graph=family,
        nodes=32,
        seed=seed,
        backend=backend,
        environment="dynamic",
        churn=churn,
        churn_params=params,
    )


class TestBackendParity:
    @pytest.mark.parametrize(
        "protocol,family,churn,params", WORKLOADS, ids=lambda w: str(w)
    )
    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_python_and_vectorized_agree_bitwise(
        self, protocol, family, churn, params, seed
    ):
        session = Simulation()
        results = {
            backend: session.simulate(
                _spec(protocol, family, churn, params, seed, backend=backend)
            )
            for backend in ("python", "auto")
        }
        reference, candidate = results["python"], results["auto"]
        assert candidate.summary_fields() == reference.summary_fields()
        for key in DYNAMIC_METADATA_KEYS:
            assert candidate.metadata[key] == reference.metadata[key], key
        assert candidate.outputs == reference.outputs

    def test_solutions_verify_on_the_post_churn_snapshot(self):
        session = Simulation()
        result = session.simulate(_spec("mis", "gnp_sparse", "burst", {}, 5))
        assert is_maximal_independent_set(result.graph, mis_from_result(result))
        result = session.simulate(
            _spec(
                "coloring",
                "random_tree",
                "burst",
                {"mode": "remove", "flips": 2, "disturbances": 2},
                5,
            )
        )
        colors = coloring_from_result(result)
        assert is_proper_coloring(result.graph, colors)
        assert len(set(colors.values())) <= 3

    def test_zero_disturbance_run_equals_static_run(self):
        session = Simulation()
        static = session.simulate(
            RunSpec(protocol="mis", graph="gnp_sparse", nodes=32, seed=9)
        )
        dynamic = session.simulate(
            _spec("mis", "gnp_sparse", "burst", {"disturbances": 0}, 9)
        )
        assert dynamic.final_states == static.final_states
        assert dynamic.rounds == static.rounds
        assert dynamic.metadata["disturbances"] == 0
        assert dynamic.metadata["reconvergence_rounds"] == []


class TestRepeatAndSweepParity:
    def test_serial_and_pooled_repeat_agree(self):
        spec = _spec("mis", "gnp_sparse", "burst", {"flips": 2}, 13)
        serial = Simulation().repeat(spec, repetitions=4)
        pooled = Simulation().repeat(spec, repetitions=4, workers=2)
        assert [r.summary_fields() for r in serial] == [
            r.summary_fields() for r in pooled
        ]
        assert [r.metadata["reconvergence_rounds"] for r in serial] == [
            r.metadata["reconvergence_rounds"] for r in pooled
        ]

    def test_churn_axis_shares_the_base_graph(self):
        spec = _spec("mis", "gnp_sparse", "burst", {}, 21)
        sweep = Simulation().sweep(
            spec, sizes=[24], repetitions=2, churns=["burst", "rewire"]
        )
        assert sweep.churns() == ["burst", "rewire"]
        by_churn = {
            churn: sorted(
                (r.repetition, r.graph_nodes, r.graph_edges)
                for r in sweep.records
                if r.churn == churn
            )
            for churn in ("burst", "rewire")
        }
        # The graph seed ignores the policy: identical base graphs per cell.
        assert by_churn["burst"] == by_churn["rewire"]
        assert sweep.all_valid()


class TestStoreReplay:
    def test_warm_store_replays_churn_sweep_with_zero_engine_runs(self, tmp_path):
        spec = _spec("mis", "gnp_sparse", "burst", {"flips": 3}, 31)
        cold = Simulation(store=str(tmp_path)).sweep(
            spec, sizes=[20, 28], repetitions=2, churns=["burst", "rewire"]
        )
        before = counters.engine_runs("dynamic")
        warm = Simulation(store=str(tmp_path)).sweep(
            spec, sizes=[20, 28], repetitions=2, churns=["burst", "rewire"]
        )
        assert counters.engine_runs("dynamic") == before
        assert warm.records == cold.records

    def test_fetch_rebuilds_the_final_snapshot(self, tmp_path):
        spec = _spec("mis", "gnp_sparse", "burst", {"flips": 4}, 37)
        session = Simulation(store=str(tmp_path))
        original = session.simulate(spec)
        replayed = Simulation(store=str(tmp_path)).simulate(spec)
        assert sorted(replayed.graph.edges) == sorted(original.graph.edges)
        assert replayed.final_states == original.final_states
        assert is_maximal_independent_set(
            replayed.graph, mis_from_result(replayed)
        )


@pytest.mark.skipif(
    not sharding_supported(), reason="platform lacks POSIX shared memory"
)
class TestShardedDynamicParity:
    """shards= composes with churn: every segment runs sharded, warm starts
    are carried into the shard workers, and the result is bitwise identical
    to the unsharded counter-rng run for any shard count >= 1."""

    @pytest.mark.parametrize(
        "protocol,family,churn,params",
        [
            ("mis", "gnp_sparse", "burst", {"flips": 3, "disturbances": 3}),
            ("mis", "gnp_sparse", "drift", {}),
        ],
        ids=lambda w: str(w),
    )
    def test_shard_counts_agree_bitwise(self, protocol, family, churn, params):
        session = Simulation()
        results = {
            shards: session.simulate(
                _spec(protocol, family, churn, params, 23).replace(shards=shards)
            )
            for shards in (1, 2, 4)
        }
        reference = results[1]
        assert reference.metadata["shard_count"] == 1
        for shards in (2, 4):
            candidate = results[shards]
            assert candidate.summary_fields() == reference.summary_fields()
            for key in DYNAMIC_METADATA_KEYS:
                assert candidate.metadata[key] == reference.metadata[key], key
            assert candidate.outputs == reference.outputs
            assert candidate.metadata["backend_mode"] == "sharded"
            assert candidate.metadata["shard_count"] == shards
            # First-segment partition stats are stamped on the run.
            assert candidate.metadata["partition_strategy"] == "bfs"
            assert candidate.metadata["halo_bytes_per_round"] >= 0

    def test_deterministic_protocol_matches_the_interpreter_bitwise(self):
        """Broadcast never draws (single-option transitions), so the rng
        stream is irrelevant and a sharded dynamic run must equal the
        python interpreter exactly — segments, metadata and all."""
        session = Simulation()
        spec = RunSpec(
            protocol="broadcast",
            graph="random_tree",
            nodes=32,
            seed=41,
            environment="dynamic",
            churn="burst",
            churn_params={"flips": 2, "disturbances": 2, "mode": "add"},
            inputs={"source": 0},
        )
        interpreted = session.simulate(spec.replace(backend="python"))
        sharded = session.simulate(spec.replace(shards=2))
        assert sharded.summary_fields() == interpreted.summary_fields()
        for key in DYNAMIC_METADATA_KEYS:
            assert sharded.metadata[key] == interpreted.metadata[key], key
        assert sharded.outputs == interpreted.outputs


class TestStepAccounting:
    """``total_node_steps`` accumulates what each segment actually reports.

    The synchronous interpreter and the vectorized engines charge every
    node of the *running snapshot* one step per round, so a dynamic run
    must report exactly ``num_nodes * rounds`` summed segment by segment —
    not ``num_nodes * total_rounds`` computed once from the base graph,
    which silently assumes every snapshot keeps the base node count."""

    @pytest.mark.parametrize("seed", [3, 11, 59])
    def test_steps_equal_the_per_segment_sum_under_node_churn(self, seed):
        # 'drift' emits node_off/node_on events: the snapshot's *active*
        # topology changes between segments even though the node universe
        # is fixed.
        result = Simulation().simulate(
            _spec("mis", "gnp_sparse", "drift", {}, seed)
        )
        meta = result.metadata
        assert meta["churn_policy"] == "drift"
        rounds_per_segment = [meta["initial_rounds"], *meta["reconvergence_rounds"]]
        assert result.rounds == sum(rounds_per_segment)
        assert result.total_node_steps == result.graph.num_nodes * sum(
            rounds_per_segment
        )

    def test_messages_and_steps_accumulate_across_segments(self):
        result = Simulation().simulate(
            _spec("mis", "gnp_sparse", "burst", {"flips": 2, "disturbances": 2}, 7)
        )
        assert result.metadata["disturbances"] == 2
        assert result.total_node_steps == result.graph.num_nodes * result.rounds
        assert result.total_messages > 0
