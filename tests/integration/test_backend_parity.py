"""Seed-for-seed equivalence of the interpreted and vectorized backends.

The vectorized engine replays the interpreter's ``random.Random`` draw
sequence (one ``randrange`` per node with a multi-option transition, in
ascending node order), so for every (graph, protocol, seed) triple the two
backends must produce *identical* :class:`ExecutionResult` fields: final
states, outputs, rounds, total node steps, message counts and the seed
itself.  This is the contract that makes ``backend="auto"`` safe to use
everywhere — this module pins it across the paper's protocols and the graph
families of the scaling experiments.
"""

import pytest

from repro.compilers import compile_to_asynchronous, lower_to_single_query
from repro.graphs import generators
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import (
    is_maximal_independent_set,
    is_proper_coloring,
)

SEEDS = (0, 1, 17)

GRAPHS = {
    "path": lambda seed: generators.path_graph(40),
    "tree": lambda seed: generators.random_tree(60, seed=seed),
    "gnp": lambda seed: generators.gnp_random_graph(60, 0.08, seed=seed),
}


def _run_both(graph, protocol_factory, seed, inputs=None, max_rounds=100_000):
    results = []
    for backend in ("python", "vectorized"):
        results.append(
            run_synchronous(
                graph,
                protocol_factory(),
                seed=seed,
                inputs=inputs,
                max_rounds=max_rounds,
                raise_on_timeout=False,
                backend=backend,
            )
        )
    return results


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("seed", SEEDS)
def test_mis_parity(family, seed):
    graph = GRAPHS[family](seed)
    interpreted, vectorized = _run_both(graph, MISProtocol, seed)
    assert interpreted.summary_fields() == vectorized.summary_fields()
    assert is_maximal_independent_set(graph, mis_from_result(vectorized))


@pytest.mark.parametrize("family", ["path", "tree"])
@pytest.mark.parametrize("seed", SEEDS)
def test_coloring_parity(family, seed):
    graph = GRAPHS[family](seed)
    interpreted, vectorized = _run_both(
        graph, TreeColoringProtocol, seed, max_rounds=50_000
    )
    assert interpreted.summary_fields() == vectorized.summary_fields()
    assert is_proper_coloring(graph, coloring_from_result(vectorized))


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("seed", SEEDS)
def test_broadcast_parity(family, seed):
    from repro.graphs.properties import is_connected

    graph = GRAPHS[family](seed)
    # On a disconnected G(n,p) sample the token cannot reach every node; the
    # backends must still agree on the (timed-out) partial execution, so cap
    # the budget rather than skip.
    max_rounds = graph.num_nodes + 1 if not is_connected(graph) else 100_000
    interpreted, vectorized = _run_both(
        graph, BroadcastProtocol, seed, inputs=broadcast_inputs(0),
        max_rounds=max_rounds,
    )
    assert interpreted.summary_fields() == vectorized.summary_fields()
    if is_connected(graph):
        assert vectorized.reached_output
        assert all(vectorized.outputs[node] for node in graph.nodes)


@pytest.mark.parametrize("seed", SEEDS)
def test_biased_coin_mis_parity(seed):
    """Weighted option sets (duplicated choices) draw identically too."""
    graph = generators.gnp_random_graph(48, 0.1, seed=seed)
    interpreted, vectorized = _run_both(
        graph, lambda: MISProtocol(climb_weight=3, decide_weight=1), seed
    )
    assert interpreted.summary_fields() == vectorized.summary_fields()


@pytest.mark.parametrize("seed", SEEDS)
def test_timeout_parity(seed):
    """Partial executions (round budget hit) also agree field-for-field."""
    graph = generators.cycle_graph(24)
    interpreted, vectorized = _run_both(graph, MISProtocol, seed, max_rounds=3)
    assert not interpreted.reached_output
    assert interpreted.summary_fields() == vectorized.summary_fields()


# Synchronizer- and multiquery-compiled protocols: their reachable closures
# are far too large for the eager tabulation, so the vectorized backend runs
# them off a LazyExtendedTable — the parity contract is identical.
COMPILED_PROTOCOLS = {
    "synchronized-broadcast": lambda: compile_to_asynchronous(BroadcastProtocol()),
    "synchronized-mis": lambda: compile_to_asynchronous(MISProtocol()),
    "single-query-mis": lambda: lower_to_single_query(MISProtocol()),
}


@pytest.mark.parametrize("name", sorted(COMPILED_PROTOCOLS))
@pytest.mark.parametrize("seed", (0, 17))
def test_compiled_protocol_parity(name, seed):
    factory = COMPILED_PROTOCOLS[name]
    inputs = broadcast_inputs(0) if "broadcast" in name else None
    graph = (
        generators.path_graph(24)
        if "broadcast" in name
        else generators.gnp_random_graph(20, 0.25, seed=seed)
    )
    interpreted, vectorized = _run_both(
        graph, factory, seed, inputs=inputs, max_rounds=2_000_000
    )
    assert interpreted.summary_fields() == vectorized.summary_fields()
    assert interpreted.reached_output


@pytest.mark.parametrize("seed", (0, 17))
def test_compiled_coloring_parity(seed):
    """The compiled tree-coloring protocol overflows even the *lazy strict*
    enumeration attempt of the eager path; the lazy extended table runs it."""
    graph = generators.random_tree(16, seed=seed)
    interpreted, vectorized = _run_both(
        graph,
        lambda: compile_to_asynchronous(TreeColoringProtocol()),
        seed,
        max_rounds=5_000_000,
    )
    assert interpreted.summary_fields() == vectorized.summary_fields()
    assert interpreted.reached_output


def test_compiled_protocols_vectorize_under_auto():
    """backend='auto' no longer interprets compiled protocols silently: the
    selection metadata reports the lazy vectorized path and the reason."""
    graph = generators.path_graph(16)
    result = run_synchronous(
        graph,
        compile_to_asynchronous(BroadcastProtocol()),
        seed=3,
        inputs=broadcast_inputs(0),
        max_rounds=1_000_000,
        raise_on_timeout=False,
        backend="auto",
    )
    assert result.metadata["backend"] == "vectorized"
    assert result.metadata["backend_mode"] == "lazy"
    assert "lazy" in result.metadata["backend_reason"]


def test_auto_backend_matches_python_on_the_full_matrix():
    """One sweep-shaped pass with backend='auto' against the interpreter."""
    for family in sorted(GRAPHS):
        graph = GRAPHS[family](5)
        auto = run_synchronous(
            graph, MISProtocol(), seed=5, backend="auto", raise_on_timeout=False
        )
        python = run_synchronous(
            graph, MISProtocol(), seed=5, backend="python", raise_on_timeout=False
        )
        assert auto.summary_fields() == python.summary_fields()


# ---------------------------------------------------------------------- #
# Kernel tier parity                                                      #
# ---------------------------------------------------------------------- #
# The compiled-kernel tier must be *bitwise* identical to the vectorized
# tier (and therefore to the interpreter) for every workload it accepts.
# When numba is absent the fixture runs the uncompiled kernel bodies —
# the exact functions numba would compile, executed as pure python — so
# the parity lock is skip-free: it exercises the same arithmetic on every
# host, and the compiled path on hosts with numba.  Graphs are small
# because the pure bodies interpret every loop iteration.

from repro.scheduling.async_engine import run_asynchronous  # noqa: E402
from repro.scheduling.kernels import kernel_availability  # noqa: E402

KERNEL_SEEDS = (0, 1, 17)

KERNEL_GRAPHS = {
    "path": lambda seed: generators.path_graph(26),
    "random_tree": lambda seed: generators.random_tree(28, seed=seed),
    "gnp_sparse": lambda seed: generators.gnp_random_graph(30, 0.12, seed=seed),
}

KERNEL_PROTOCOLS = ("mis", "coloring", "broadcast")


@pytest.fixture
def kernel_tier(monkeypatch):
    """Make the kernel tier available on every host (see module comment)."""
    from repro.scheduling import kernels

    if not kernel_availability()[0]:
        monkeypatch.setattr(kernels, "_FORCE_MODE", "pure")


def _kernel_run_pair(graph, factory, seed, *, inputs=None, max_rounds=100_000,
                     shards=None):
    kernel = run_synchronous(
        graph, factory(), seed=seed, inputs=inputs, max_rounds=max_rounds,
        raise_on_timeout=False, backend="kernel", shards=shards,
    )
    vectorized = run_synchronous(
        graph, factory(), seed=seed, inputs=inputs, max_rounds=max_rounds,
        raise_on_timeout=False, backend="vectorized", shards=shards,
    )
    return kernel, vectorized


@pytest.mark.parametrize("family", sorted(KERNEL_GRAPHS))
@pytest.mark.parametrize("seed", KERNEL_SEEDS)
@pytest.mark.parametrize("proto", KERNEL_PROTOCOLS)
def test_sync_kernel_parity(kernel_tier, proto, family, seed):
    graph = KERNEL_GRAPHS[family](seed)
    factory = {
        "mis": MISProtocol,
        "coloring": TreeColoringProtocol,
        "broadcast": BroadcastProtocol,
    }[proto]
    inputs = broadcast_inputs(0) if proto == "broadcast" else None
    # Tree-coloring never terminates on a non-tree; parity must still hold
    # on the capped partial execution.
    max_rounds = 400 if (proto, family) == ("coloring", "gnp_sparse") else 100_000
    if proto == "broadcast":
        from repro.graphs.properties import is_connected

        if not is_connected(graph):
            max_rounds = graph.num_nodes + 1
    kernel, vectorized = _kernel_run_pair(
        graph, factory, seed, inputs=inputs, max_rounds=max_rounds
    )
    assert kernel.summary_fields() == vectorized.summary_fields()
    assert kernel.metadata["backend"] == "kernel"


@pytest.mark.parametrize("family", sorted(KERNEL_GRAPHS))
@pytest.mark.parametrize("seed", KERNEL_SEEDS)
def test_sync_kernel_sharded_parity(kernel_tier, family, seed):
    """kernel × shards: the fused shard-round kernel against the NumPy
    shard loop (both on the counter rng stream), plus shard-count
    invariance of the kernel path itself."""
    graph = KERNEL_GRAPHS[family](seed)
    kernel, vectorized = _kernel_run_pair(graph, MISProtocol, seed, shards=2)
    assert kernel.summary_fields() == vectorized.summary_fields()
    one_shard = run_synchronous(
        graph, MISProtocol(), seed=seed, raise_on_timeout=False,
        backend="kernel", shards=1,
    )
    assert kernel.summary_fields() == one_shard.summary_fields()


@pytest.mark.parametrize("family", sorted(KERNEL_GRAPHS))
@pytest.mark.parametrize("seed", KERNEL_SEEDS)
def test_async_kernel_parity(kernel_tier, family, seed):
    """The time-bucketed async kernels against the NumPy bucket path."""
    graph = KERNEL_GRAPHS[family](seed)
    results = []
    for backend in ("vectorized", "kernel"):
        results.append(
            run_asynchronous(
                graph, BroadcastProtocol(), seed=seed, adversary_seed=seed + 17,
                inputs=broadcast_inputs(0), max_events=500_000,
                raise_on_timeout=False, backend=backend,
            )
        )
    vectorized, kernel = results
    assert kernel.summary_fields() == vectorized.summary_fields()
    assert kernel.metadata["backend"] == "kernel"
    assert vectorized.metadata["backend"] == "vectorized"


@pytest.mark.parametrize("seed", (0, 17))
def test_async_kernel_parity_compiled_mis(kernel_tier, seed):
    """Kernel buckets also agree on a synchronizer-compiled protocol
    running off the shared lazy strict table."""
    from repro.scheduling.compiled import LazyStrictTable

    protocol = compile_to_asynchronous(MISProtocol())
    table = LazyStrictTable(protocol)
    graph = generators.gnp_random_graph(7, 0.45, seed=3)
    results = []
    for backend in ("vectorized", "kernel"):
        results.append(
            run_asynchronous(
                graph, protocol, seed=seed, adversary_seed=seed + 17,
                max_events=2_000_000, raise_on_timeout=False,
                backend=backend, table=table,
            )
        )
    vectorized, kernel = results
    assert kernel.summary_fields() == vectorized.summary_fields()
    assert kernel.reached_output
