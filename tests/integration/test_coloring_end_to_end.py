"""End-to-end tests of the Stone Age tree 3-coloring protocol (Theorem 5.4)."""

import math

import pytest

from repro.graphs import (
    Graph,
    binary_tree,
    caterpillar_graph,
    empty_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import assert_proper_coloring

TREE_ZOO = [
    ("single-node", lambda: Graph(1, [])),
    ("single-edge", lambda: path_graph(2)),
    ("path-40", lambda: path_graph(40)),
    ("star-50", lambda: star_graph(50)),
    ("binary-tree-127", lambda: binary_tree(127)),
    ("caterpillar-12x3", lambda: caterpillar_graph(12, 3)),
    ("random-tree-100", lambda: random_tree(100, seed=4)),
    ("random-tree-333", lambda: random_tree(333, seed=5)),
    ("broom", lambda: Graph(8, [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (3, 6), (3, 7)])),
]


class TestCorrectness:
    @pytest.mark.parametrize("name, builder", TREE_ZOO, ids=[n for n, _ in TREE_ZOO])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_produces_a_proper_3_coloring(self, name, builder, seed):
        tree = builder()
        result = run_synchronous(tree, TreeColoringProtocol(), seed=seed, max_rounds=20_000)
        assert result.reached_output
        assert_proper_coloring(tree, coloring_from_result(result), max_colors=3)

    def test_forest_input_colors_every_component(self):
        forest = Graph(7, [(0, 1), (1, 2), (3, 4), (5, 6)])
        result = run_synchronous(forest, TreeColoringProtocol(), seed=2, max_rounds=20_000)
        assert_proper_coloring(forest, coloring_from_result(result), max_colors=3)

    def test_isolated_nodes_color_themselves(self):
        result = run_synchronous(empty_graph(5), TreeColoringProtocol(), seed=3)
        colors = coloring_from_result(result)
        assert set(colors) == set(range(5))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_many_seeds(self, seed):
        tree = random_tree(150, seed=100 + seed)
        result = run_synchronous(tree, TreeColoringProtocol(), seed=seed, max_rounds=20_000)
        assert_proper_coloring(tree, coloring_from_result(result), max_colors=3)


class TestScalingShape:
    def test_rounds_grow_logarithmically_on_random_trees(self):
        sizes = [128, 256, 512, 1024]
        rounds = []
        for size in sizes:
            per_seed = [
                run_synchronous(
                    random_tree(size, seed=size + seed),
                    TreeColoringProtocol(),
                    seed=seed,
                    max_rounds=20_000,
                ).rounds
                for seed in range(2)
            ]
            rounds.append(sum(per_seed) / len(per_seed))
        assert rounds[-1] / rounds[-2] < 1.6
        assert rounds[-1] <= 20 * math.log2(sizes[-1])

    def test_star_is_colored_in_constantly_many_phases(self):
        result = run_synchronous(star_graph(500), TreeColoringProtocol(), seed=1, max_rounds=20_000)
        assert result.rounds <= 40

    def test_path_coloring_is_fast(self):
        result = run_synchronous(path_graph(800), TreeColoringProtocol(), seed=2, max_rounds=20_000)
        assert result.rounds <= 200
