"""Sharded asynchronous execution parity matrix and shared-memory hygiene.

The asynchronous sharding contract mirrors the synchronous one: for any
shard count ``>= 1``, a sharded time-bucketed run produces exactly the
result of the unsharded vectorized engine on the counter rng stream — same
final states, same outputs, same step/message counts, same normalised
run-time, node for node.  Every adversary schedule is a pure counter
function of ``(seed, node, step)``, so the event timeline never depends on
which shard computes it; this module pins that across the full matrix of
protocols × all six registered adversary policies × shard counts × seeds,
and checks that no ``/dev/shm`` segment outlives an engine — including
when a worker process is killed mid-run.
"""

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest

np_available = np  # imported eagerly; the engines require numpy anyway

from repro.api import RunSpec, Simulation
from repro.compilers import compile_to_asynchronous
from repro.core.errors import ExecutionError
from repro.graphs import generators
from repro.protocols.mis import MISProtocol
from repro.scheduling.sharded_engine import SEGMENT_PREFIX
from repro.scheduling.sharded_async_engine import (
    ShardedAsyncEngine,
    sharding_supported,
)
from repro.scheduling.vectorized_async_engine import VectorizedAsynchronousEngine

pytestmark = pytest.mark.skipif(
    not sharding_supported(), reason="platform lacks POSIX shared memory"
)

#: protocol -> (graph family, extra spec fields).  Broadcast and coloring
#: need connected/tree topologies to make progress.
PROTOCOL_SPECS = {
    "mis": ("gnp_sparse", {}),
    "coloring": ("random_tree", {}),
    "broadcast": ("random_tree", {"inputs": {"source": 0}}),
}
ADVERSARIES = [
    "synchronous",
    "uniform",
    "exponential",
    "skewed-rates",
    "bursty",
    "targeted-laggard",
]
SHARD_COUNTS = [1, 2, 4]
SEEDS = [0, 7, 1234]
NODES = 24
#: Event budget for the matrix cells.  Some protocol × adversary pairings
#: need millions of events to terminate at this size; parity on the
#: *truncated* execution is just as strong a check as parity on a
#: terminated one (both engines count the same per-bucket events), without
#: paying the full run for every cell.
MATRIX_MAX_EVENTS = 20_000


def _leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_*")


def _spec(protocol, adversary, seed, **overrides):
    family, extra = PROTOCOL_SPECS[protocol]
    fields = dict(
        protocol=protocol,
        graph=family,
        nodes=NODES,
        seed=seed,
        environment="async",
        adversary=adversary,
        max_events=MATRIX_MAX_EVENTS,
        **extra,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def _identity(result) -> tuple:
    """Everything two parity-locked async runs must agree on, bitwise."""
    return (
        result.summary_fields(),
        result.time_units,
        result.total_node_steps,
        result.total_messages,
        result.metadata.get("max_parameter"),
    )


@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("protocol", sorted(PROTOCOL_SPECS))
def test_sharded_matches_unsharded_counter_run(protocol, adversary):
    """The shards × seeds matrix for one protocol × adversary cell."""
    session = Simulation()
    for seed in SEEDS:
        reference = session.simulate(
            _spec(protocol, adversary, seed, shards=1), raise_on_timeout=False
        )
        assert reference.metadata["shard_count"] == 1
        assert reference.metadata["halo_bytes_per_bucket"] == 0
        for shards in SHARD_COUNTS[1:]:
            sharded = session.simulate(
                _spec(protocol, adversary, seed, shards=shards),
                raise_on_timeout=False,
            )
            assert _identity(sharded) == _identity(reference), (
                f"{protocol}/{adversary}/seed={seed}: shards={shards} "
                f"diverged from the unsharded counter run"
            )
            assert sharded.metadata["backend_mode"] == "sharded"
            assert sharded.metadata["shard_count"] == shards
            # One f64 arrival + one i64 letter per directed cut edge.
            assert sharded.metadata["halo_bytes_per_bucket"] == (
                2 * sharded.metadata["cut_edges"] * 16
            )
    assert not _leaked_segments()


def test_deterministic_protocol_matches_the_interpreter_bitwise():
    """Where the protocol never draws (single-option transitions), the
    sharded run equals the *interpreter* too — rng mode is irrelevant."""
    session = Simulation()
    base = _spec("broadcast", "uniform", 3, max_events=2_000_000)
    interpreted = session.simulate(
        base.replace(backend="python"), raise_on_timeout=False
    )
    sharded = session.simulate(base.replace(shards=2), raise_on_timeout=False)
    assert interpreted.reached_output and sharded.reached_output
    assert _identity(sharded) == _identity(interpreted)


def test_counter_stream_differs_from_legacy_serial_stream(monkeypatch):
    """shards= selects a *different* (but internally consistent) rng stream."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)  # a true legacy run
    session = Simulation()
    base = _spec("mis", "uniform", 11, max_events=2_000_000)
    legacy = session.simulate(base, raise_on_timeout=False)
    counter = session.simulate(base.replace(shards=1), raise_on_timeout=False)
    # Both are valid MIS executions; equality of the full summary would mean
    # the streams coincided — possible in principle, vanishingly unlikely.
    assert legacy.reached_output and counter.reached_output
    assert "shard_count" not in legacy.metadata
    assert counter.metadata["shard_count"] == 1
    assert _identity(legacy) != _identity(counter)


def test_shard_count_capped_at_node_count():
    session = Simulation()
    small = _spec("mis", "uniform", 1, nodes=3, max_events=100_000)
    result = session.simulate(small.replace(shards=16), raise_on_timeout=False)
    reference = session.simulate(small.replace(shards=1), raise_on_timeout=False)
    assert _identity(result) == _identity(reference)
    assert result.metadata["shard_count"] <= 3
    assert not _leaked_segments()


def test_engine_direct_parity_and_context_manager():
    """Engine-level check without the session: same arrays, same everything."""
    graph = generators.gnp_random_graph(NODES, 0.12, seed=5)
    protocol = compile_to_asynchronous(MISProtocol())
    reference = VectorizedAsynchronousEngine(
        graph, protocol, seed=17, rng_mode="counter"
    ).run(max_events=2_000_000, raise_on_timeout=False)
    with ShardedAsyncEngine(graph, protocol, seed=17, shards=3) as engine:
        sharded = engine.run(max_events=2_000_000, raise_on_timeout=False)
    assert _identity(sharded) == _identity(reference)
    assert not _leaked_segments()


def test_engine_is_single_run_and_close_is_idempotent():
    graph = generators.gnp_random_graph(16, 0.15, seed=2)
    protocol = compile_to_asynchronous(MISProtocol())
    engine = ShardedAsyncEngine(graph, protocol, seed=4, shards=2)
    engine.run(max_events=50_000, raise_on_timeout=False)
    with pytest.raises(ExecutionError, match="single-run"):
        engine.run(max_events=50_000, raise_on_timeout=False)
    engine.close()
    engine.close()  # second close must be a no-op
    assert not _leaked_segments()


def test_worker_crash_surfaces_and_leaks_nothing():
    """SIGKILLing a shard worker aborts the run loudly, not with a hang."""
    graph = generators.gnp_random_graph(600, 0.01, seed=9)
    protocol = compile_to_asynchronous(MISProtocol())
    engine = ShardedAsyncEngine(
        graph, protocol, seed=9, shards=2, barrier_timeout=20.0
    )

    def _assassinate():
        deadline = time.monotonic() + 10.0
        while not engine._workers and time.monotonic() < deadline:
            time.sleep(0.01)
        if engine._workers:
            os.kill(engine._workers[0].pid, signal.SIGKILL)

    killer = threading.Thread(target=_assassinate)
    killer.start()
    try:
        with pytest.raises(ExecutionError, match="shard worker|barrier broke"):
            engine.run(max_events=50_000_000, raise_on_timeout=False)
    finally:
        killer.join()
        engine.close()
    assert not _leaked_segments()
