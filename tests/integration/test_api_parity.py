"""Acceptance parity matrix: RunSpec executions replay the legacy call paths.

A :class:`~repro.api.RunSpec` built from a plain dictionary must reproduce,
seed for seed, the same :class:`ExecutionResult` the historical free
functions produced — across all four engines: {sync, async} × {python,
vectorized} — for multiple registered protocols.  This is what makes the
facade a safe drop-in for every recorded experiment and the serialized spec
a trustworthy unit of distributed work.
"""

import warnings

import pytest

from repro.api import RunSpec, Simulation
from repro.api.registry import GRAPH_FAMILIES
from repro.compilers import compile_to_asynchronous
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.coloring import TreeColoringProtocol
from repro.protocols.mis import MISProtocol
from repro.scheduling.adversary import UniformRandomAdversary
from repro.scheduling.async_engine import run_asynchronous
from repro.scheduling.sync_engine import run_synchronous

pytest.importorskip("numpy")

#: (registry name, protocol class, graph family, inputs-dict, legacy inputs)
PROTOCOL_CASES = [
    ("mis", MISProtocol, "gnp_dense", {}, None),
    ("coloring", TreeColoringProtocol, "random_tree", {}, None),
    ("broadcast", BroadcastProtocol, "path", {"source": 0}, broadcast_inputs(0)),
]

BACKENDS = ["python", "vectorized"]


def _legacy(callable_, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return callable_(*args, **kwargs)


class TestSynchronousParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "name, protocol_cls, family, inputs, legacy_inputs",
        PROTOCOL_CASES,
        ids=[case[0] for case in PROTOCOL_CASES],
    )
    def test_spec_from_dict_replays_legacy_run(
        self, name, protocol_cls, family, inputs, legacy_inputs, backend
    ):
        spec = RunSpec.from_dict(
            {
                "protocol": name,
                "nodes": 24,
                "graph": family,
                "seed": 13,
                "backend": backend,
                "inputs": inputs,
            }
        )
        facade = Simulation().simulate(spec)
        graph = GRAPH_FAMILIES.get(family)(24, 13)
        legacy = _legacy(
            run_synchronous,
            graph,
            protocol_cls(),
            seed=13,
            inputs=legacy_inputs,
            backend=backend,
        )
        assert facade.summary_fields() == legacy.summary_fields()
        assert facade.metadata["backend"] == legacy.metadata["backend"]


class TestAsynchronousParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "name, protocol_cls, family, inputs, legacy_inputs",
        [case for case in PROTOCOL_CASES if case[0] != "coloring"],
        ids=[case[0] for case in PROTOCOL_CASES if case[0] != "coloring"],
    )
    def test_spec_from_dict_replays_legacy_run(
        self, name, protocol_cls, family, inputs, legacy_inputs, backend
    ):
        spec = RunSpec.from_dict(
            {
                "protocol": name,
                "nodes": 12,
                "graph": family,
                "seed": 21,
                "backend": backend,
                "environment": "async",
                "adversary": "uniform",
                "adversary_seed": 77,
                "inputs": inputs,
            }
        )
        facade = Simulation().simulate(spec)
        graph = GRAPH_FAMILIES.get(family)(12, 21)
        legacy = _legacy(
            run_asynchronous,
            graph,
            compile_to_asynchronous(protocol_cls()),
            seed=21,
            adversary=UniformRandomAdversary(),
            adversary_seed=77,
            inputs=legacy_inputs,
            backend=backend,
        )
        assert facade.reached_output and legacy.reached_output
        assert facade.final_states == legacy.final_states
        assert facade.outputs == legacy.outputs
        assert facade.time_units == legacy.time_units
        assert facade.elapsed_time == legacy.elapsed_time
        assert facade.total_node_steps == legacy.total_node_steps
        assert facade.seed == legacy.seed


class TestSessionWarmTables:
    def test_compiled_table_survives_spec_variations(self):
        # Varying graph/seed must reuse the same cached table: the workload
        # key excludes them by design.
        session = Simulation()
        base = RunSpec(protocol="mis", nodes=16, seed=1, backend="vectorized")
        session.simulate(base)
        session.simulate(base.replace(nodes=24, seed=9, graph="cycle"))
        assert session.cache_hits == 1
        # A different backend token is a different workload.
        session.simulate(base.replace(backend="python"))
        assert session.cache_misses == 2
