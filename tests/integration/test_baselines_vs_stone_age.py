"""Cross-model comparison tests (the related-work axis of the paper)."""

import math

import pytest

from repro.baselines.beeping import sop_selection_mis
from repro.baselines.centralized import greedy_mis, two_color_tree
from repro.baselines.cole_vishkin import cole_vishkin_3_coloring
from repro.baselines.luby import luby_mis
from repro.graphs import gnp_random_graph, random_tree
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.protocols.matching import maximal_matching_via_line_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import (
    colors_used,
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
)


class TestMISAcrossModels:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_three_models_produce_valid_results(self, seed):
        graph = gnp_random_graph(80, 0.06, seed=seed)
        stone = mis_from_result(run_synchronous(graph, MISProtocol(), seed=seed))
        luby_set, _ = luby_mis(graph, seed=seed)
        beep_set, _ = sop_selection_mis(graph, seed=seed)
        for candidate in (stone, luby_set, beep_set):
            assert is_maximal_independent_set(graph, candidate)

    def test_luby_needs_fewer_rounds_but_bigger_messages(self):
        graph = gnp_random_graph(200, 0.03, seed=7)
        stone = run_synchronous(graph, MISProtocol(), seed=7)
        _, luby_result = luby_mis(graph, seed=7)
        assert luby_result.rounds <= stone.rounds
        nfsm_letter_bits = math.ceil(math.log2(len(MISProtocol().alphabet)))
        luby_bits = luby_result.total_message_bits / max(luby_result.total_messages, 1)
        assert luby_bits > nfsm_letter_bits

    def test_stone_age_mis_size_is_comparable_to_greedy(self):
        graph = gnp_random_graph(120, 0.05, seed=9)
        stone = mis_from_result(run_synchronous(graph, MISProtocol(), seed=9))
        greedy = greedy_mis(graph)
        assert len(stone) >= 0.5 * len(greedy)


class TestColoringAcrossModels:
    @pytest.mark.parametrize("seed", range(3))
    def test_stone_age_and_cole_vishkin_both_3_color(self, seed):
        tree = random_tree(150, seed=seed)
        stone = coloring_from_result(
            run_synchronous(tree, TreeColoringProtocol(), seed=seed, max_rounds=20_000)
        )
        baseline = cole_vishkin_3_coloring(tree)
        assert is_proper_coloring(tree, stone) and colors_used(stone) <= 3
        assert is_proper_coloring(tree, baseline.colors) and colors_used(baseline.colors) <= 3

    def test_cole_vishkin_is_much_faster_but_needs_identifiers(self):
        tree = random_tree(500, seed=4)
        stone = run_synchronous(tree, TreeColoringProtocol(), seed=4, max_rounds=20_000)
        baseline = cole_vishkin_3_coloring(tree)
        assert baseline.rounds < stone.rounds

    def test_two_coloring_exists_but_is_out_of_reach_distributedly(self):
        tree = random_tree(100, seed=5)
        sequential = two_color_tree(tree)
        assert colors_used(sequential) <= 2
        stone = coloring_from_result(
            run_synchronous(tree, TreeColoringProtocol(), seed=5, max_rounds=20_000)
        )
        assert colors_used(stone) <= 3


class TestMatchingReduction:
    @pytest.mark.parametrize("seed", range(3))
    def test_line_graph_matching_matches_greedy_quality(self, seed):
        graph = gnp_random_graph(40, 0.12, seed=seed)
        matching, _ = maximal_matching_via_line_graph(graph, seed=seed)
        assert is_maximal_matching(graph, matching)
        # Any maximal matching is a 2-approximation of the maximum one, so two
        # maximal matchings are within a factor 2 of each other.
        from repro.baselines.centralized import greedy_maximal_matching

        greedy = greedy_maximal_matching(graph)
        assert len(matching) >= math.ceil(len(greedy) / 2)
