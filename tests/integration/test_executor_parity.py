"""Pooled-vs-serial parity matrix for the multiprocess RunSpec executor.

The executor's headline risk is *silent nondeterminism*: a pooled run that
drifts from serial execution would corrupt every sweep-derived claim without
failing anything.  This suite pins the determinism contract across the full
matrix — {sync, async} × {python, vectorized} × {mis, coloring, broadcast}
× workers ∈ {1, 2, 4} — for both ``repeat()`` and ``sweep()``: results must
be **bitwise-identical** to serial execution, in the serial order.
"""

import pytest

from repro.api import RunSpec, Simulation

WORKER_COUNTS = (1, 2, 4)

#: (environment, backend, protocol, spec extras) — every spec-runnable
#: protocol on both engines in both environments, sized to stay fast.
MATRIX = [
    (environment, backend, protocol)
    for environment in ("sync", "async")
    for backend in ("python", "vectorized")
    for protocol in ("mis", "coloring", "broadcast")
]


def _spec(environment: str, backend: str, protocol: str) -> RunSpec:
    extras = {}
    if protocol == "broadcast":
        extras["inputs"] = {"source": 1}
    if environment == "async":
        extras["adversary"] = "uniform"
    return RunSpec(
        protocol=protocol,
        nodes=10,
        environment=environment,
        backend=backend,
        seed=5,
        **extras,
    )


def _fingerprint(result):
    """Everything two identical executions must agree on, bitwise."""
    return (
        result.summary_fields(),
        result.time_units,
        result.elapsed_time,
        result.metadata,
    )


@pytest.mark.parametrize("environment,backend,protocol", MATRIX)
def test_pooled_repeat_matches_serial_bitwise(environment, backend, protocol):
    spec = _spec(environment, backend, protocol)
    serial = [_fingerprint(r) for r in Simulation().repeat(spec, 3)]
    for workers in WORKER_COUNTS:
        pooled = [
            _fingerprint(r)
            for r in Simulation().repeat(spec, 3, workers=workers)
        ]
        assert pooled == serial, f"repeat drifted at workers={workers}"


@pytest.mark.parametrize("environment,backend", [
    ("sync", "python"),
    ("sync", "vectorized"),
    ("async", "python"),
    ("async", "vectorized"),
])
@pytest.mark.parametrize("protocol", ["mis", "coloring", "broadcast"])
def test_pooled_sweep_matches_serial_bitwise(environment, backend, protocol):
    spec = _spec(environment, backend, protocol)
    kwargs = dict(sizes=[6, 9], repetitions=2)
    if environment == "async":
        kwargs["adversaries"] = ["uniform", "bursty"]
        kwargs["repetitions"] = 1
    serial = Simulation().sweep(spec, **kwargs)
    for workers in WORKER_COUNTS:
        pooled = Simulation().sweep(spec, **kwargs, workers=workers)
        assert pooled.records == serial.records, f"sweep drifted at workers={workers}"
        assert pooled.protocol_name == serial.protocol_name


class TestAsyncSweepSchema:
    """The asynchronous sweep axis introduced alongside the executor."""

    def test_records_carry_the_adversary_label(self):
        sweep = Simulation().sweep(
            RunSpec(protocol="mis", seed=3, environment="async"),
            sizes=[8],
            adversaries=["uniform", "bursty"],
            repetitions=2,
        )
        assert sweep.adversaries() == ["bursty", "uniform"]
        assert len(sweep.records) == 4
        assert all(record.rounds is None for record in sweep.records)
        assert all(record.cost > 0 for record in sweep.records if record.reached_output)

    def test_every_adversary_runs_on_the_same_graph(self):
        sweep = Simulation().sweep(
            RunSpec(protocol="mis", seed=3, environment="async"),
            sizes=[10],
            families=["gnp_sparse"],
            adversaries=["uniform", "bursty", "exponential"],
            repetitions=1,
        )
        edges = {record.graph_edges for record in sweep.records}
        assert len(edges) == 1

    def test_async_graphs_match_the_sync_sweep(self):
        sync = Simulation().sweep(
            RunSpec(protocol="mis", seed=3), sizes=[8, 12], repetitions=1
        )
        asynchronous = Simulation().sweep(
            RunSpec(protocol="mis", seed=3, environment="async"),
            sizes=[8, 12],
            adversaries=["uniform"],
            repetitions=1,
        )
        assert [(r.size, r.graph_edges) for r in sync.records] == [
            (r.size, r.graph_edges) for r in asynchronous.records
        ]

    def test_default_adversary_axis_is_the_specs_adversary(self):
        sweep = Simulation().sweep(
            RunSpec(protocol="mis", seed=3, environment="async", adversary="bursty"),
            sizes=[8],
            repetitions=1,
        )
        assert [record.adversary for record in sweep.records] == ["bursty"]

    def test_adversaries_rejected_for_sync_specs(self):
        from repro.core.errors import SpecError

        with pytest.raises(SpecError, match="async"):
            Simulation().sweep(
                RunSpec(protocol="mis", seed=3),
                sizes=[8],
                adversaries=["uniform"],
            )
