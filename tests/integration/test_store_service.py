"""Integration determinism harness for the result store and job service.

The tentpole claim of the store is *replay without execution*: once a
seeded workload ran cold, rerunning it against the same store must
(a) perform **zero** engine executions — counter-asserted via
:mod:`repro.core.counters`, which every engine primitive increments — and
(b) reproduce the cold run's records and payloads **bitwise**, under both
serial and pooled (``workers=2``) execution.  The service smoke test then
drives the same contract over HTTP: submit, poll, fetch; resubmits are
deduplicated and answered from the store byte-for-byte.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import RunSpec, Simulation, run_specs
from repro.api.store import canonical_json, result_to_payload, spec_hash
from repro.core.counters import engine_runs

SWEEP_KWARGS = {
    "families": ["gnp_sparse", "random_tree"],
    "sizes": [16, 24],
    "repetitions": 2,
}
SWEEP_SPEC = RunSpec(protocol="mis", seed=11)
CELLS = 2 * 2 * 2


def _record_tuples(sweep):
    return [
        (
            record.family,
            record.size,
            record.repetition,
            record.graph_nodes,
            record.graph_edges,
            record.cost,
            record.rounds,
            record.reached_output,
            record.valid,
            record.adversary,
            record.extra,
        )
        for record in sweep.records
    ]


# ---------------------------------------------------------------------- #
# The determinism harness: cold then warm, serial and pooled              #
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("warm_workers", [None, 2], ids=["serial", "workers2"])
def test_warm_sweep_runs_zero_engines_and_is_bitwise_identical(
    tmp_path, warm_workers
):
    cold_session = Simulation(store=tmp_path / "store")
    before_cold = engine_runs()
    cold = cold_session.sweep(SWEEP_SPEC, **SWEEP_KWARGS)
    assert engine_runs() - before_cold == CELLS
    assert cold_session.store.stats()["writes"] == CELLS
    assert cold_session.store.stats()["entries"] == CELLS

    warm_session = Simulation(store=tmp_path / "store")
    before_warm = engine_runs()
    warm = warm_session.sweep(SWEEP_SPEC, workers=warm_workers, **SWEEP_KWARGS)
    assert engine_runs() == before_warm  # ZERO engine executions
    stats = warm_session.store.stats()
    assert stats["hits"] == CELLS
    assert stats["misses"] == 0
    assert stats["writes"] == 0
    assert _record_tuples(warm) == _record_tuples(cold)


@pytest.mark.parametrize("cold_workers", [None, 2], ids=["serial", "workers2"])
def test_pooled_and_serial_cold_runs_fill_identical_stores(
    tmp_path, cold_workers
):
    """The store contents are execution-strategy-independent, byte for byte."""
    session = Simulation(store=tmp_path / "store")
    session.sweep(SWEEP_SPEC, workers=cold_workers, **SWEEP_KWARGS)
    entries = {
        path.name: path.read_bytes() for path in session.store._entry_paths()
    }
    assert len(entries) == CELLS

    other = Simulation(store=tmp_path / "other")
    other.sweep(
        SWEEP_SPEC, workers=2 if cold_workers is None else None, **SWEEP_KWARGS
    )
    other_entries = {
        path.name: path.read_bytes() for path in other.store._entry_paths()
    }
    assert other_entries == entries


@pytest.mark.parametrize("warm_workers", [None, 2], ids=["serial", "workers2"])
def test_warm_repeat_is_bitwise_identical(tmp_path, warm_workers):
    spec = RunSpec(protocol="coloring", nodes=20, seed=4, graph="random_tree")
    cold = Simulation(store=tmp_path / "store").repeat(spec, 4)

    warm_session = Simulation(store=tmp_path / "store")
    before = engine_runs()
    warm = warm_session.repeat(spec, 4, workers=warm_workers)
    assert engine_runs() == before
    assert warm == cold
    assert [
        canonical_json(result_to_payload(result)) for result in warm
    ] == [canonical_json(result_to_payload(result)) for result in cold]


def test_warm_run_specs_dispatches_no_pool_tasks(tmp_path):
    specs = [RunSpec(protocol="mis", nodes=n, seed=s) for n in (16, 24) for s in (1, 2)]
    session = Simulation(store=tmp_path / "store")
    cold = run_specs(specs, workers=2, session=session)

    warm_session = Simulation(store=tmp_path / "store")
    before = engine_runs()
    warm = run_specs(specs, workers=2, session=warm_session)
    assert engine_runs() == before
    assert warm == cold
    assert warm_session.store.stats()["hits"] == len(specs)


def test_partial_warm_store_runs_only_the_missing_cells(tmp_path):
    """A half-warm store executes exactly the missing half."""
    session = Simulation(store=tmp_path / "store")
    session.sweep(SWEEP_SPEC, families=["gnp_sparse"], sizes=[16, 24], repetitions=2)

    before = engine_runs()
    full = Simulation(store=tmp_path / "store")
    sweep = full.sweep(SWEEP_SPEC, **SWEEP_KWARGS)
    assert engine_runs() - before == CELLS // 2  # only random_tree cells ran
    stats = full.store.stats()
    assert stats["hits"] == CELLS // 2
    assert stats["entries"] == CELLS
    assert len(sweep.records) == CELLS


# ---------------------------------------------------------------------- #
# The job service, over real HTTP                                         #
# ---------------------------------------------------------------------- #
@pytest.fixture()
def service_url(tmp_path):
    from repro.api.service import JobService, make_server

    service = JobService(tmp_path / "store")
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url, *, raw=False):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read()
            return response.status, body if raw else json.loads(body)
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _wait_done(base, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = _get(f"{base}/jobs/{job_id}")
        if status["status"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in time")


def test_service_job_lifecycle_and_cached_resubmit(service_url):
    base, service = service_url
    spec = {"protocol": "mis", "nodes": 24, "seed": 9}
    digest = spec_hash(RunSpec.from_dict(spec))

    code, submitted = _post(f"{base}/jobs", spec)
    assert code in (200, 202)
    assert submitted["job"] == digest  # the job id IS the spec hash
    status = _wait_done(base, digest)
    assert status["status"] == "done"
    assert status["error"] is None

    code, payload = _get(f"{base}/jobs/{digest}/result", raw=True)
    assert code == 200
    decoded = json.loads(payload)
    assert decoded["reached_output"] is True

    # Resubmission: same job, no new execution.
    before = engine_runs()
    code, resubmitted = _post(f"{base}/jobs", spec)
    assert code == 200
    assert resubmitted["job"] == digest
    assert resubmitted["status"] == "done"
    assert engine_runs() == before

    # The ledger streams the lifecycle.
    code, events = _get(f"{base}/jobs/{digest}/events", raw=True)
    kinds = [json.loads(line)["event"] for line in events.decode().splitlines()]
    assert kinds[:3] == ["queued", "started", "finished"]

    code, stats = _get(f"{base}/stats")
    assert stats["jobs"]["done"] >= 1
    assert stats["store"]["writes"] == 1


def test_fresh_service_serves_byte_identical_results(tmp_path):
    """A brand-new service over a warm store answers without executing."""
    from repro.api.service import JobService, make_server

    spec = {"protocol": "coloring", "nodes": 16, "seed": 3, "graph": "random_tree"}

    def run_service(expect_cached):
        service = JobService(tmp_path / "store")
        server = make_server(service)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://{host}:{port}"
        try:
            _, submitted = _post(f"{base}/jobs", spec)
            assert submitted["cached"] is expect_cached
            _wait_done(base, submitted["job"])
            _, payload = _get(f"{base}/jobs/{submitted['job']}/result", raw=True)
            return payload
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    cold_payload = run_service(expect_cached=False)
    before = engine_runs()
    warm_payload = run_service(expect_cached=True)
    assert engine_runs() == before
    assert warm_payload == cold_payload  # byte-identical across processes


def test_service_rejects_malformed_specs(service_url):
    base, _ = service_url
    assert _post(f"{base}/jobs", {"protocol": "no-such-protocol"})[0] == 400
    assert _post(f"{base}/jobs", {"protocol": "mis", "bogus_key": 1})[0] == 400
    assert _get(f"{base}/jobs/ffffffff")[0] == 404
    assert _get(f"{base}/healthz")[1] == {"ok": True}


def _wait_service_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job is not None and job["status"] in ("done", "failed"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish in time")


def test_finalization_failure_fails_the_job_not_the_drain_thread(
    tmp_path, monkeypatch
):
    """An unencodable result fails its own job; later jobs still drain."""
    from repro.api import service as service_mod
    from repro.core.errors import StorePayloadError

    real = service_mod.result_to_payload
    calls = {"n": 0}

    def flaky(result):
        calls["n"] += 1
        if calls["n"] == 1:
            raise StorePayloadError("no canonical store encoding")
        return real(result)

    monkeypatch.setattr(service_mod, "result_to_payload", flaky)
    service = service_mod.JobService(tmp_path / "store")
    try:
        first = service.submit({"protocol": "mis", "nodes": 16, "seed": 101})
        failed = _wait_service_done(service, first["job"])
        assert failed["status"] == "failed"
        assert "StorePayloadError" in failed["error"]

        # The drain thread survived: a subsequent submission completes.
        second = service.submit({"protocol": "mis", "nodes": 16, "seed": 102})
        done = _wait_service_done(service, second["job"])
        assert done["status"] == "done"
        assert service.result_json(second["job"]) is not None
    finally:
        service.close()


def test_unknown_post_drains_body_and_keeps_connection_in_sync(service_url):
    """A 404'd POST body must not desync a keep-alive connection."""
    import http.client
    from urllib.parse import urlsplit

    base, _ = service_url
    parts = urlsplit(base)
    conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
    try:
        conn.request("POST", "/nope", body=json.dumps({"pad": "x" * 512}))
        response = conn.getresponse()
        assert response.status == 404
        response.read()

        # Same persistent connection: the next request must parse cleanly.
        conn.request(
            "POST", "/jobs", body=json.dumps({"protocol": "mis", "nodes": 16, "seed": 5})
        )
        response = conn.getresponse()
        assert response.status in (200, 202)
        assert json.loads(response.read())["job"]
    finally:
        conn.close()


def test_finished_jobs_are_evicted_and_reserved_from_store(tmp_path):
    """The job table stays bounded; evicted cacheable jobs answer from disk."""
    from repro.api.service import JobService

    service = JobService(tmp_path / "store", max_finished_jobs=2)
    try:
        ids = []
        for seed in range(4):
            summary = service.submit({"protocol": "mis", "nodes": 16, "seed": seed})
            ids.append(summary["job"])
            _wait_service_done(service, summary["job"])
        assert len(service._jobs) <= 2

        oldest = ids[0]
        assert oldest not in service._jobs  # evicted from memory...
        job = service.job(oldest)  # ...but still answerable from the store
        assert job["status"] == "done"
        payload = service.result_json(oldest)
        assert json.loads(payload)["reached_output"] is True
    finally:
        service.close()


def test_service_runs_unseeded_specs_without_caching(service_url):
    base, service = service_url
    spec = {"protocol": "mis", "nodes": 16, "seed": None}
    _, first = _post(f"{base}/jobs", spec)
    _, second = _post(f"{base}/jobs", spec)
    assert first["job"] != second["job"]  # never deduplicated
    _wait_done(base, first["job"])
    _wait_done(base, second["job"])
    stats = service.stats()
    assert stats["store"]["writes"] == 0
    assert stats["store"]["entries"] == 0
