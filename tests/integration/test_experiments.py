"""Integration tests of the experiment harness (E1–E14).

Each experiment is run with a deliberately small workload so the whole module
stays fast; the assertions check both that the harness produces a complete
report and that the paper's qualitative shape holds even at these sizes.
"""

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    experiment_baseline_comparison,
    experiment_coloring_decay,
    experiment_coloring_scaling,
    experiment_dynamic_reconvergence,
    experiment_edge_decay,
    experiment_emulator_comparison,
    experiment_lba_on_path,
    experiment_linear_space,
    experiment_message_budget,
    experiment_mis_scaling,
    experiment_model_requirements,
    experiment_multiquery_overhead,
    experiment_synchronizer_overhead,
    experiment_tournaments,
)


class TestExperimentRegistry:
    def test_all_experiments_are_registered(self):
        expected = {f"E{i}" for i in range(1, 15)} | {"A1", "A2"}
        assert set(ALL_EXPERIMENTS) == expected


class TestScalingExperiments:
    def test_e1_mis_scaling(self):
        report = experiment_mis_scaling(sizes=[16, 32, 64, 128], repetitions=2)
        assert report.rows
        assert report.passed is True

    def test_e2_coloring_scaling(self):
        report = experiment_coloring_scaling(sizes=[16, 32, 64, 128], repetitions=2)
        assert report.rows
        assert report.passed is True


class TestCompilerExperiments:
    def test_e3_synchronizer_overhead(self):
        report = experiment_synchronizer_overhead(sizes=(6, 8))
        assert report.rows
        assert report.passed is True

    def test_e4_multiquery_overhead(self):
        report = experiment_multiquery_overhead(sizes=(16, 24))
        assert report.passed is True


class TestAutomataExperiments:
    def test_e5_linear_space(self):
        report = experiment_linear_space(sizes=(16, 48))
        assert report.passed is True

    def test_e6_lba_on_path(self):
        report = experiment_lba_on_path(word_lengths=(0, 2, 4))
        assert report.passed is True


class TestStructuralExperiments:
    def test_e7_tournaments(self):
        report = experiment_tournaments(sizes=(24,))
        assert report.passed is True

    def test_e8_edge_decay(self):
        report = experiment_edge_decay(sizes=(48,), repetitions=2)
        assert report.passed is True

    def test_e9_coloring_decay(self):
        report = experiment_coloring_decay(sizes=(48,), repetitions=2)
        assert report.passed is True


class TestComparisonExperiments:
    def test_e10_baseline_comparison(self):
        report = experiment_baseline_comparison(sizes=(48,))
        assert report.passed is True

    def test_e11_message_budget(self):
        report = experiment_message_budget(sizes=(48, 96))
        assert report.passed is True

    def test_e12_model_requirements(self):
        report = experiment_model_requirements()
        assert report.passed is True
        assert len(report.rows) >= 6


class TestDynamicExperiments:
    def test_e13_dynamic_reconvergence(self):
        report = experiment_dynamic_reconvergence(sizes=[24, 48], repetitions=2)
        assert report.rows
        assert report.passed is True

    def test_e14_emulator_comparison(self):
        report = experiment_emulator_comparison(sizes=[24, 48], repetitions=2)
        assert report.rows
        assert report.passed is True


class TestReportRendering:
    @pytest.mark.parametrize("factory, kwargs", [
        (experiment_model_requirements, {}),
        (experiment_lba_on_path, {"word_lengths": (0, 2)}),
    ])
    def test_reports_render_to_text(self, factory, kwargs):
        report = factory(**kwargs)
        text = report.render()
        assert report.experiment_id in text
        assert "paper claim" in text
