"""Integration tests of the full compilation pipeline under adversarial timing.

These tests exercise the complete route the paper describes: write a protocol
at the comfortable (multi-letter, locally synchronous) level, compile it with
the synchronizer (Theorem 3.1 — which also folds in the multi-letter lowering
of Theorem 3.4), and run it in the raw asynchronous model of Section 2 under
every adversary policy in the library's suite.
"""

import pytest

from repro.compilers import compile_to_asynchronous, lower_to_single_query
from repro.graphs import cycle_graph, gnp_random_graph, path_graph, random_tree, star_graph
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.adversary import default_adversary_suite
from repro.scheduling.async_engine import run_asynchronous
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import (
    assert_maximal_independent_set,
    assert_proper_coloring,
)

ADVERSARIES = default_adversary_suite()


class TestSynchronizedBroadcast:
    @pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.name)
    def test_broadcast_informs_everyone(self, adversary):
        graph = path_graph(7)
        compiled = compile_to_asynchronous(BroadcastProtocol())
        result = run_asynchronous(
            graph,
            compiled,
            inputs=broadcast_inputs(3),
            seed=1,
            adversary=adversary,
            adversary_seed=2,
        )
        assert result.reached_output
        assert all(result.outputs[node] for node in graph.nodes)


class TestSynchronizedMIS:
    @pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.name)
    @pytest.mark.parametrize("graph_builder", [
        lambda: gnp_random_graph(10, 0.3, seed=4),
        lambda: cycle_graph(8),
        lambda: star_graph(6),
    ], ids=["gnp-10", "cycle-8", "star-7"])
    def test_compiled_mis_is_correct_under_every_adversary(self, adversary, graph_builder):
        graph = graph_builder()
        compiled = compile_to_asynchronous(MISProtocol())
        result = run_asynchronous(
            graph,
            compiled,
            seed=11,
            adversary=adversary,
            adversary_seed=13,
            max_events=4_000_000,
        )
        assert result.reached_output
        assert_maximal_independent_set(graph, mis_from_result(result))

    def test_compiled_outputs_match_the_problem_not_the_schedule(self):
        """Different adversaries may give different MIS's, but always MIS's."""
        graph = gnp_random_graph(12, 0.25, seed=6)
        compiled = compile_to_asynchronous(MISProtocol())
        outputs = set()
        for index, adversary in enumerate(ADVERSARIES):
            result = run_asynchronous(
                graph, compiled, seed=21, adversary=adversary, adversary_seed=index,
                max_events=4_000_000,
            )
            winners = frozenset(mis_from_result(result))
            assert_maximal_independent_set(graph, winners)
            outputs.add(winners)
        assert outputs  # at least one valid outcome observed


class TestSynchronizedColoring:
    @pytest.mark.parametrize("adversary", ADVERSARIES[:3], ids=lambda a: a.name)
    def test_compiled_coloring_on_a_small_tree(self, adversary):
        tree = random_tree(7, seed=9)
        compiled = compile_to_asynchronous(TreeColoringProtocol())
        result = run_asynchronous(
            tree,
            compiled,
            seed=5,
            adversary=adversary,
            adversary_seed=6,
            max_events=6_000_000,
        )
        assert result.reached_output
        assert_proper_coloring(tree, coloring_from_result(result), max_colors=3)


class TestLoweringPlusSynchronizer:
    def test_single_query_lowering_then_synchronizer_also_works(self):
        """Theorem 3.4 followed by Theorem 3.1 (the paper's original order)."""
        graph = cycle_graph(6)
        lowered = lower_to_single_query(MISProtocol())
        compiled = compile_to_asynchronous(lowered)
        result = run_asynchronous(
            graph, compiled, seed=3, adversary=ADVERSARIES[1], adversary_seed=4,
            max_events=8_000_000,
        )
        assert result.reached_output
        assert_maximal_independent_set(graph, mis_from_result(result))


class TestOverheadShape:
    def test_synchronizer_overhead_does_not_grow_with_n(self):
        compiled = compile_to_asynchronous(BroadcastProtocol())
        ratios = []
        for size in (6, 12, 24):
            graph = path_graph(size)
            base = run_synchronous(graph, BroadcastProtocol(), inputs=broadcast_inputs(0), seed=1)
            asynchronous = run_asynchronous(
                graph, compiled, inputs=broadcast_inputs(0), seed=1,
                adversary=ADVERSARIES[0], adversary_seed=2,
            )
            ratios.append(asynchronous.time_units / base.rounds)
        # Constant multiplicative overhead: the ratio stays flat as n doubles.
        assert max(ratios) <= 1.5 * min(ratios)
