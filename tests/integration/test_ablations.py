"""Integration tests for the ablation experiments (A1, A2) and biased protocols."""

import pytest

from repro.analysis.experiments import (
    experiment_adversary_severity,
    experiment_coin_bias_ablation,
)
from repro.graphs import cycle_graph, gnp_random_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import is_maximal_independent_set


class TestBiasedCoinProtocol:
    @pytest.mark.parametrize("climb, decide", [(1, 1), (1, 3), (3, 1), (5, 2)])
    def test_any_bias_still_produces_a_correct_mis(self, climb, decide):
        graph = gnp_random_graph(40, 0.12, seed=climb * 10 + decide)
        protocol = MISProtocol(climb_weight=climb, decide_weight=decide)
        result = run_synchronous(graph, protocol, seed=3)
        assert is_maximal_independent_set(graph, mis_from_result(result))

    def test_bias_is_reflected_in_the_protocol_name(self):
        assert MISProtocol().name == "stone-age-mis"
        assert "3:1" in MISProtocol(climb_weight=3, decide_weight=1).name

    def test_up_option_multiset_sizes_follow_the_weights(self):
        from repro.core.alphabet import Observation

        protocol = MISProtocol(climb_weight=2, decide_weight=3)
        observation = Observation(protocol.alphabet, [0] * len(protocol.alphabet))
        options = protocol.options("UP0", observation)
        assert len(options) == 5

    def test_invalid_weights_are_rejected(self):
        with pytest.raises(ValueError):
            MISProtocol(climb_weight=0)
        with pytest.raises(ValueError):
            MISProtocol(decide_weight=0)

    def test_heavy_climb_bias_stretches_the_execution(self):
        """Climbing too eagerly makes tournaments (and runs) much longer."""
        graph = cycle_graph(48)
        fair_rounds = []
        climber_rounds = []
        for seed in range(3):
            fair_rounds.append(run_synchronous(graph, MISProtocol(), seed=seed).rounds)
            climber_rounds.append(
                run_synchronous(graph, MISProtocol(climb_weight=7, decide_weight=1), seed=seed).rounds
            )
        assert sum(climber_rounds) > sum(fair_rounds)


class TestAblationExperiments:
    def test_a1_coin_bias(self):
        report = experiment_coin_bias_ablation(sizes=(48,), repetitions=2)
        assert report.rows
        assert report.passed is True

    def test_a2_adversary_severity(self):
        report = experiment_adversary_severity(slow_factors=(1.0, 8.0), size=7)
        assert report.rows
        assert report.passed is True

    def test_a2_normalised_run_time_is_insensitive_to_severity(self):
        report = experiment_adversary_severity(slow_factors=(1.0, 32.0), size=7)
        units = [row[2] for row in report.rows]
        assert max(units) <= 5 * min(units)
