"""Integration tests for the Section 6 equivalence results."""

import random

import pytest

from repro.automata.languages import SAMPLE_LANGUAGES
from repro.automata.lba_to_nfsm import LBAPathProtocol, decide_word_on_path, path_network_for_word
from repro.automata.nfsm_to_lba import simulate_with_linear_space
from repro.compilers import compile_to_asynchronous
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.adversary import SkewedRatesAdversary
from repro.scheduling.async_engine import run_asynchronous
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import is_maximal_independent_set


class TestLemma62PathSimulation:
    @pytest.mark.parametrize("language", sorted(SAMPLE_LANGUAGES))
    def test_path_network_decides_like_the_sequential_machine(self, language):
        factory, reference, alphabet = SAMPLE_LANGUAGES[language]
        machine = factory()
        rng = random.Random(hash(language) % (2**32))
        for trial in range(12):
            word = [rng.choice(alphabet) for _ in range(rng.randint(0, 9))]
            verdict, _ = decide_word_on_path(machine, word, seed=trial)
            assert verdict == reference(word), (language, word)

    def test_rounds_scale_with_the_sequential_step_count(self):
        factory, _, _ = SAMPLE_LANGUAGES["palindromes"]
        machine = factory()
        word = list("abba" * 3)
        sequential = machine.run(word)
        _, network = decide_word_on_path(machine, word, seed=1)
        # Every LBA step maps to O(1) rounds (one head hand-off), plus the
        # final verdict flood of O(n) rounds.
        assert network.rounds <= 3 * sequential.steps + 5 * (len(word) + 2)

    def test_compiled_path_protocol_is_correct_asynchronously(self):
        factory, reference, _ = SAMPLE_LANGUAGES["parity"]
        machine = factory()
        word = ["1", "1", "0"]
        protocol = LBAPathProtocol(machine)
        graph, inputs = path_network_for_word(word)
        compiled = compile_to_asynchronous(protocol)
        result = run_asynchronous(
            graph, compiled, inputs=inputs, seed=2,
            adversary=SkewedRatesAdversary(), adversary_seed=3,
            max_events=6_000_000,
        )
        assert result.reached_output
        verdicts = set(result.outputs.values())
        assert verdicts == {reference(word)}


class TestLemma61LinearSpaceSimulation:
    @pytest.mark.parametrize("seed", range(3))
    def test_linear_space_simulation_reproduces_the_engine(self, seed):
        graph = gnp_random_graph(40, 0.1, seed=seed)
        engine_result = run_synchronous(graph, MISProtocol(), seed=seed)
        tape_result = simulate_with_linear_space(graph, MISProtocol(), seed=seed)
        assert tape_result.final_states == engine_result.final_states
        assert is_maximal_independent_set(graph, mis_from_result(tape_result))

    def test_space_stays_linear_as_the_graph_grows(self):
        per_entry = []
        for size in (32, 128, 512):
            graph = gnp_random_graph(size, 4.0 / size, seed=size)
            result = simulate_with_linear_space(graph, MISProtocol(), seed=1)
            per_entry.append(result.metadata["space_report"].extra_cells_per_entry)
        assert max(per_entry) <= 2.0
        # The per-entry overhead is flat, not growing with n.
        assert max(per_entry) - min(per_entry) < 0.5
