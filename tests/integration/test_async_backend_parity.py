"""Seed-for-seed equivalence of the interpreted and vectorized async backends.

The vectorized asynchronous engine replays the interpreted engine's
canonical event order (deliveries before steps at equal instants, steps by
node id) and its ``random.Random`` draw sequence, and the shipped adversary
schedules are pure functions of the draw coordinates — so for every
(policy, protocol, graph, seed) combination a *terminating* run must produce
identical results on both backends: outputs, reached_output, final states,
step/message counts and the normalised ``time_units``.  This module pins
that contract over the full adversary suite × {MIS, coloring, broadcast} ×
{path, tree, gnp} × three seeds.

The synchronizer-compiled MIS and coloring protocols exercise the lazy
table (their eager reachable closures run to 10^5–10^6 states); one table
per protocol is shared across the whole matrix, as real sweeps do.
"""

import pytest

from repro.compilers import compile_to_asynchronous
from repro.graphs import generators
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.coloring import TreeColoringProtocol
from repro.protocols.mis import MISProtocol
from repro.scheduling.adversary import default_adversary_suite
from repro.scheduling.async_engine import run_asynchronous
from repro.scheduling.compiled import LazyStrictTable

SEEDS = (0, 1, 2)
ADVERSARIES = default_adversary_suite()

GRAPHS = {
    "path": lambda: generators.path_graph(6),
    "tree": lambda: generators.random_tree(7, seed=13),
    "gnp": lambda: generators.gnp_random_graph(7, 0.45, seed=3),
}

# The synchronizer-compiled coloring protocol needs hundreds of compiled
# steps per simulated round, so its matrix leg runs on slightly smaller
# instances to keep the suite fast; coverage (policies × seeds) is identical.
COLORING_GRAPHS = {
    "path": lambda: generators.path_graph(5),
    "tree": lambda: generators.random_tree(6, seed=13),
    "gnp": lambda: generators.gnp_random_graph(7, 0.45, seed=3),
}

# The compiled protocols (and their shared lazy tables) are built once: the
# matrix is 100+ runs and the whole point of table interning is amortisation.
_COMPILED = {}


def _compiled(name):
    if name not in _COMPILED:
        factory = {
            "mis": lambda: compile_to_asynchronous(MISProtocol()),
            "coloring": lambda: compile_to_asynchronous(TreeColoringProtocol()),
            "broadcast": BroadcastProtocol,
        }[name]
        protocol = factory()
        _COMPILED[name] = (protocol, LazyStrictTable(protocol))
    return _COMPILED[name]


def _run_both(protocol, table, graph, adversary, seed, inputs=None, max_events=2_000_000):
    results = []
    for backend in ("python", "vectorized"):
        results.append(
            run_asynchronous(
                graph,
                protocol,
                adversary=adversary,
                seed=seed,
                adversary_seed=seed + 17,
                inputs=inputs,
                max_events=max_events,
                raise_on_timeout=False,
                backend=backend,
                table=table,
            )
        )
    return results


def _assert_parity(interpreted, vectorized):
    if not interpreted.reached_output:
        # Partial (timed-out) runs are compared only on the verdict: the
        # ``max_events`` budget is enforced at bucket granularity by the
        # vectorized engine, so mid-run states need not align event-for-event.
        assert not vectorized.reached_output
        return
    assert vectorized.reached_output
    assert interpreted.outputs == vectorized.outputs
    assert interpreted.final_states == vectorized.final_states
    assert interpreted.time_units == vectorized.time_units
    assert interpreted.elapsed_time == vectorized.elapsed_time
    assert interpreted.total_node_steps == vectorized.total_node_steps
    assert interpreted.total_messages == vectorized.total_messages
    assert (
        interpreted.metadata["max_parameter"] == vectorized.metadata["max_parameter"]
    )


@pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.name)
@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("seed", SEEDS)
def test_broadcast_parity(adversary, family, seed):
    protocol, table = _compiled("broadcast")
    graph = GRAPHS[family]()
    interpreted, vectorized = _run_both(
        protocol, table, graph, adversary, seed, inputs=broadcast_inputs(0)
    )
    assert interpreted.reached_output
    _assert_parity(interpreted, vectorized)


@pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.name)
@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("seed", SEEDS)
def test_synchronized_mis_parity(adversary, family, seed):
    protocol, table = _compiled("mis")
    graph = GRAPHS[family]()
    interpreted, vectorized = _run_both(protocol, table, graph, adversary, seed)
    assert interpreted.reached_output
    _assert_parity(interpreted, vectorized)


@pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.name)
@pytest.mark.parametrize("family", ["path", "tree"])
@pytest.mark.parametrize("seed", SEEDS)
def test_synchronized_coloring_parity(adversary, family, seed):
    protocol, table = _compiled("coloring")
    graph = COLORING_GRAPHS[family]()
    interpreted, vectorized = _run_both(protocol, table, graph, adversary, seed)
    assert interpreted.reached_output
    _assert_parity(interpreted, vectorized)


def test_array_path_parity_with_multi_option_transitions():
    """The small-graph matrix above runs entirely through the engine's
    scalar tiny-bucket path; this leg forces the *array* path (buckets far
    above ``SCALAR_BUCKET_CUTOFF``) with a protocol that actually draws
    randomness — synchronized MIS at n = 200 — covering the optimistic
    apply, the rng-rewind termination scan and the ragged delivery/emit
    gathers."""
    protocol, table = _compiled("mis")
    graph = generators.gnp_random_graph(200, 3.0 / 200, seed=9)
    interpreted, vectorized = _run_both(
        protocol, table, graph, ADVERSARIES[1], 2, max_events=40_000_000
    )
    assert interpreted.reached_output
    _assert_parity(interpreted, vectorized)


def test_array_path_parity_with_data_driven_margins():
    """The exponential adversary has no useful static delay lower bound, so
    the engine samples the pending steps' delays to size its buckets — the
    one margin mode the rest of the suite never reaches at array scale."""
    protocol, table = _compiled("broadcast")
    graph = generators.binary_tree(1025)
    interpreted, vectorized = _run_both(
        protocol,
        table,
        graph,
        ADVERSARIES[2],
        1,
        inputs=broadcast_inputs(0),
        max_events=40_000_000,
    )
    assert interpreted.reached_output
    assert interpreted.metadata["adversary"] == "exponential"
    _assert_parity(interpreted, vectorized)


@pytest.mark.parametrize("seed", SEEDS)
def test_synchronized_coloring_parity_on_gnp(seed):
    """Coloring × gnp: the protocol's contract covers trees only, so a cyclic
    G(n,p) sample may never reach an output configuration — the backends must
    still agree on the verdict within the same event budget."""
    protocol, table = _compiled("coloring")
    graph = COLORING_GRAPHS["gnp"]()
    interpreted, vectorized = _run_both(
        protocol, table, graph, ADVERSARIES[1], seed, max_events=120_000
    )
    _assert_parity(interpreted, vectorized)
