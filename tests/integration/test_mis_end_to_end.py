"""End-to-end tests of the Stone Age MIS protocol (Theorem 4.5)."""

import math

import pytest

from repro.graphs import (
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    random_tree,
    star_graph,
)
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import assert_maximal_independent_set


GRAPH_ZOO = [
    ("path-25", lambda: path_graph(25)),
    ("cycle-24", lambda: cycle_graph(24)),
    ("cycle-25", lambda: cycle_graph(25)),
    ("star-30", lambda: star_graph(30)),
    ("clique-12", lambda: complete_graph(12)),
    ("bipartite-8x9", lambda: complete_bipartite_graph(8, 9)),
    ("grid-6x6", lambda: grid_graph(6, 6)),
    ("binary-tree-63", lambda: binary_tree(63)),
    ("random-tree-80", lambda: random_tree(80, seed=1)),
    ("gnp-sparse-100", lambda: gnp_random_graph(100, 0.03, seed=2)),
    ("gnp-dense-40", lambda: gnp_random_graph(40, 0.4, seed=3)),
    ("regular-30x4", lambda: random_regular_graph(30, 4, seed=4)),
    ("isolated-10", lambda: empty_graph(10)),
]


class TestCorrectness:
    @pytest.mark.parametrize("name, builder", GRAPH_ZOO, ids=[n for n, _ in GRAPH_ZOO])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_always_produces_a_maximal_independent_set(self, name, builder, seed):
        graph = builder()
        result = run_synchronous(graph, MISProtocol(), seed=seed)
        assert result.reached_output
        assert_maximal_independent_set(graph, mis_from_result(result))

    def test_isolated_nodes_always_win(self):
        graph = empty_graph(7)
        result = run_synchronous(graph, MISProtocol(), seed=3)
        assert mis_from_result(result) == set(graph.nodes)

    def test_clique_has_exactly_one_winner(self):
        result = run_synchronous(complete_graph(15), MISProtocol(), seed=5)
        assert len(mis_from_result(result)) == 1

    def test_star_center_or_all_leaves(self):
        graph = star_graph(20)
        result = run_synchronous(graph, MISProtocol(), seed=7)
        winners = mis_from_result(result)
        assert winners == {0} or winners == set(range(1, 21))

    def test_complete_bipartite_selects_one_side(self):
        graph = complete_bipartite_graph(6, 9)
        result = run_synchronous(graph, MISProtocol(), seed=9)
        winners = mis_from_result(result)
        assert winners == set(range(6)) or winners == set(range(6, 15))


class TestScalingShape:
    def test_rounds_grow_polylogarithmically(self):
        """Doubling n should multiply the round count by far less than 2."""
        sizes = [64, 128, 256, 512]
        rounds = []
        for size in sizes:
            graph = gnp_random_graph(size, 4.0 / size, seed=size)
            per_seed = [
                run_synchronous(graph, MISProtocol(), seed=seed).rounds
                for seed in range(3)
            ]
            rounds.append(sum(per_seed) / len(per_seed))
        ratio_large = rounds[-1] / rounds[-2]
        assert ratio_large < 1.7
        # And the absolute values stay within a small multiple of log^2 n.
        assert rounds[-1] <= 6 * math.log2(sizes[-1]) ** 2

    def test_runs_are_fast_even_on_a_long_cycle(self):
        result = run_synchronous(cycle_graph(1000), MISProtocol(), seed=11)
        assert result.rounds <= 150
