"""E3 — Theorem 3.1: the synchronizer costs only a constant factor.

The benchmark times one compiled-MIS execution under the skewed-rates
adversary; the report compares asynchronous time units with the synchronous
round counts across sizes and adversaries.
"""

from repro.analysis.experiments import experiment_synchronizer_overhead
from repro.compilers import compile_to_asynchronous
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.adversary import SkewedRatesAdversary
from repro.scheduling.async_engine import run_asynchronous
from repro.verification import is_maximal_independent_set


def test_bench_synchronized_mis_under_adversary(benchmark, experiment_recorder):
    graph = gnp_random_graph(10, 0.35, seed=3)
    compiled = compile_to_asynchronous(MISProtocol())

    def run_once():
        return run_asynchronous(
            graph, compiled, seed=9, adversary=SkewedRatesAdversary(), adversary_seed=4,
            max_events=4_000_000,
        )

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert is_maximal_independent_set(graph, mis_from_result(result))

    report = experiment_synchronizer_overhead(sizes=(6, 9, 12))
    experiment_recorder(report)
    assert report.passed
