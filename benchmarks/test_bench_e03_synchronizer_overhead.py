"""E3 — Theorem 3.1: the synchronizer costs only a constant factor.

The benchmark times one compiled-MIS execution under the skewed-rates
adversary on both asynchronous backends (which must agree seed-for-seed);
the report compares asynchronous time units with the synchronous round
counts across sizes and adversaries.  A separate test measures the headline
win of the vectorized asynchronous engine at n ≥ 1024 — the speedup
assertion is *soft* (report-only by default, strict with
``REPRO_STRICT_SPEEDUP=1``) so hardware noise cannot flake CI while
regressions still surface in the recorded report.
"""

from repro.analysis.experiments import experiment_synchronizer_overhead
from repro.compilers import compile_to_asynchronous
from repro.graphs import gnp_random_graph
from repro.graphs.generators import binary_tree
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.adversary import SkewedRatesAdversary
from repro.scheduling.async_engine import _run_asynchronous as run_asynchronous
from repro.verification import is_maximal_independent_set

from speedup import measure_backend_speedup, measure_sync_backend_speedup


def test_bench_synchronized_mis_under_adversary(benchmark):
    # Benchmarked on the interpreted backend: at n = 10 ``auto`` would pick it
    # anyway, and the backend comparison lives in the large-n test below.
    graph = gnp_random_graph(10, 0.35, seed=3)
    compiled = compile_to_asynchronous(MISProtocol())

    def run_once():
        return run_asynchronous(
            graph, compiled, seed=9, adversary=SkewedRatesAdversary(), adversary_seed=4,
            max_events=4_000_000,
        )

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert is_maximal_independent_set(graph, mis_from_result(result))


def test_bench_e3_overhead_report(experiment_recorder):
    report = experiment_synchronizer_overhead(sizes=(6, 9, 12))
    experiment_recorder(report)
    assert report.passed


def test_bench_e3_vectorized_speedup_at_large_n(experiment_recorder):
    """Both asynchronous backends at n = 1025: identical results; the
    vectorized engine should be ≥ 5× faster (soft assertion)."""
    measure_backend_speedup(
        binary_tree(1025),
        compile_to_asynchronous(BroadcastProtocol()),
        experiment_id="E3-backend",
        title="Asynchronous backend speedup (synchronized broadcast, skewed-rates)",
        experiment_recorder=experiment_recorder,
        inputs=broadcast_inputs(0),
        seed=1,
        adversary=SkewedRatesAdversary(),
        adversary_seed=2,
        max_events=50_000_000,
        raise_on_timeout=False,
    )


def test_bench_e3_sync_vectorized_speedup_at_large_n(experiment_recorder):
    """Both *synchronous* backends on a synchronizer-compiled protocol at
    n = 1025: identical results; the lazy-table vectorized engine should be
    ≥ 3× faster than the interpreter (soft assertion)."""
    measure_sync_backend_speedup(
        binary_tree(1025),
        lambda: compile_to_asynchronous(BroadcastProtocol()),
        experiment_id="E3-sync-backend",
        title="Synchronous backend speedup (synchronized broadcast, lazy table)",
        experiment_recorder=experiment_recorder,
        inputs=broadcast_inputs(0),
        seed=1,
        max_rounds=1_000_000,
        raise_on_timeout=False,
    )
