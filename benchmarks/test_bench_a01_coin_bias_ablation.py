"""A1 — ablation: biasing the UP-state coin of the MIS protocol.

The paper fixes a fair coin; this ablation quantifies what other biases cost
and confirms the design choice called out in DESIGN.md.
"""

from repro.analysis.experiments import experiment_coin_bias_ablation
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import _run_synchronous as run_synchronous
from repro.verification import is_maximal_independent_set


def test_bench_biased_coin_mis(benchmark, experiment_recorder):
    graph = gnp_random_graph(256, 4.0 / 256, seed=21)
    biased = MISProtocol(climb_weight=3, decide_weight=1)

    def run_once():
        return run_synchronous(graph, biased, seed=22)

    result = benchmark(run_once)
    assert is_maximal_independent_set(graph, mis_from_result(result))

    report = experiment_coin_bias_ablation(sizes=(128,), repetitions=3)
    experiment_recorder(report)
    assert report.passed
