"""E4 — Theorem 3.4: single-letter lowering multiplies rounds by |Σ| exactly."""

from repro.analysis.experiments import experiment_multiquery_overhead
from repro.compilers import lower_to_single_query
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol
from repro.scheduling.sync_engine import _run_synchronous as run_synchronous


def test_bench_lowered_mis(benchmark, experiment_recorder):
    graph = gnp_random_graph(48, 0.12, seed=4)
    lowered = lower_to_single_query(MISProtocol())

    def run_once():
        return run_synchronous(graph, lowered, seed=6, max_rounds=500_000)

    result = benchmark(run_once)
    assert result.reached_output

    report = experiment_multiquery_overhead(sizes=(16, 32, 64))
    experiment_recorder(report)
    assert report.passed
