"""E7 — Figure 1 mechanics: tournament lengths follow 2 + Geom(1/2)."""

from repro.analysis.experiments import experiment_tournaments
from repro.analysis.tournaments import trace_mis_execution
from repro.graphs import gnp_random_graph


def test_bench_traced_mis_execution(benchmark, experiment_recorder):
    graph = gnp_random_graph(128, 0.06, seed=7)

    def run_once():
        trace, _ = trace_mis_execution(graph, seed=11)
        return trace

    trace = benchmark(run_once)
    assert trace.tournament_lengths()

    report = experiment_tournaments(sizes=(32, 64, 128))
    experiment_recorder(report)
    assert report.passed
