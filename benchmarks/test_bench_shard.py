"""Intra-run sharded execution: one huge graph split across shard workers.

The sharded backend (`repro/scheduling/sharded_engine.py`) splits a single
synchronous run's node set across shared-memory workers after a BFS
locality pass, exchanging only boundary-crossing letters per round.  The
default smoke half verifies the contract cheaply — bitwise parity with the
unsharded counter-rng run plus the partition counters tagged into
``extra_info`` for the perf-trajectory log.  The large half (gated behind
``REPRO_BENCH_LARGE=1``, CI's benchmark-smoke leg) times ``shards=4``
against ``shards=1`` on a ``2**17``-node graph with a soft ≥ 2× target,
and completes a million-node smoke run — the "one huge graph" headline.

Wall-clock targets are soft everywhere (``REPRO_STRICT_SPEEDUP=1`` makes
them hard) and skipped outright on single-core boxes, where sharding can
only lose.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.reporting import ExperimentReport
from repro.api import RunSpec, Simulation
from repro.scheduling.kernels import kernel_availability
from repro.scheduling.sharded_engine import sharding_supported

from speedup import soft_assert_speedup

SHARD_SPEEDUP_TARGET = 2.0
KERNEL_SPEEDUP_TARGET = 3.0
SMOKE_NODES = 512
KERNEL_NODES = 1025
LARGE_NODES = 2**17
HUGE_NODES = 10**6

pytestmark = pytest.mark.skipif(
    not sharding_supported(), reason="platform lacks POSIX shared memory"
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _simulate(nodes: int, shards: int, *, seed: int = 1):
    return Simulation().simulate(
        RunSpec(protocol="mis", nodes=nodes, graph="gnp_sparse", seed=seed, shards=shards)
    )


def test_bench_sharded_run_smoke(benchmark):
    """Default smoke: a sharded mid-size run, parity-checked and counted."""
    reference = _simulate(SMOKE_NODES, 1)

    result = benchmark(_simulate, SMOKE_NODES, 2)

    assert result.summary_fields() == reference.summary_fields()
    assert result.metadata["backend_mode"] == "sharded"
    benchmark.extra_info["shards"] = result.metadata["shard_count"]
    benchmark.extra_info["cut_edges"] = result.metadata["cut_edges"]
    benchmark.extra_info["halo_bytes_per_round"] = result.metadata[
        "halo_bytes_per_round"
    ]
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.skipif(
    not kernel_availability()[0],
    reason="kernel tier unavailable (numba is not installed)",
)
def test_bench_kernel_vs_vectorized(experiment_recorder):
    """Compiled kernels vs the NumPy round loop at n=1025: soft >= 3x.

    Each backend gets its own warmed session — the first run pays the
    table build (and, for the kernel tier, the one-time numba JIT, cached
    on disk across processes) so the timed runs measure the round loops
    alone.  Parity is asserted on every timed seed: the kernel tier buys
    time, never different numbers.
    """
    repetitions = 3
    times: dict[str, float] = {}
    results: dict[tuple[str, int], object] = {}
    for backend in ("vectorized", "kernel"):
        session = Simulation()
        spec = RunSpec(
            protocol="mis", nodes=KERNEL_NODES, graph="gnp_sparse",
            seed=1, backend=backend,
        )
        session.simulate(spec)  # warm: tabulation + JIT outside the clock
        start = time.perf_counter()
        for seed in range(2, 2 + repetitions):
            results[backend, seed] = session.simulate(spec.replace(seed=seed))
        times[backend] = time.perf_counter() - start

    for seed in range(2, 2 + repetitions):
        assert (
            results["kernel", seed].summary_fields()
            == results["vectorized", seed].summary_fields()
        )
        assert results["kernel", seed].metadata["backend"] == "kernel"

    ratio = times["vectorized"] / times["kernel"]
    report = ExperimentReport(
        experiment_id="KERNEL",
        title="Compiled kernel tier vs vectorized NumPy rounds",
        paper_claim="the negotiated tier ladder is pure speedup per rank",
        headers=["nodes", "reps", "numpy s", "kernel s", "speedup"],
    )
    report.add_row(
        KERNEL_NODES,
        repetitions,
        round(times["vectorized"], 3),
        round(times["kernel"], 3),
        round(ratio, 2),
    )
    report.conclusion = (
        f"n={KERNEL_NODES}: {times['vectorized']:.3f}s NumPy vs "
        f"{times['kernel']:.3f}s compiled ({ratio:.2f}x), bitwise-identical"
    )
    report.passed = True
    experiment_recorder(report)
    soft_assert_speedup(
        ratio, f"kernel tier at n={KERNEL_NODES}", KERNEL_SPEEDUP_TARGET
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="large shard benchmarks run only with REPRO_BENCH_LARGE=1",
)
def test_bench_shard_speedup_large(experiment_recorder):
    """shards=4 vs shards=1 on a 2**17-node graph: soft >= 2x target."""
    start = time.perf_counter()
    serial = _simulate(LARGE_NODES, 1)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    sharded = _simulate(LARGE_NODES, 4)
    sharded_time = time.perf_counter() - start

    # Determinism first: sharding buys time, never different numbers.
    assert sharded.summary_fields() == serial.summary_fields()

    ratio = serial_time / sharded_time
    report = ExperimentReport(
        experiment_id="SHARD",
        title="Intra-run sharded execution on one large graph",
        paper_claim="halo exchange over cut edges keeps shard scaling near-linear",
        headers=["nodes", "shards", "serial s", "sharded s", "speedup", "cut", "cpus"],
    )
    report.add_row(
        LARGE_NODES,
        4,
        round(serial_time, 2),
        round(sharded_time, 2),
        round(ratio, 2),
        sharded.metadata["cut_edges"],
        _usable_cpus(),
    )
    report.conclusion = (
        f"n={LARGE_NODES}: {serial_time:.2f}s unsharded vs "
        f"{sharded_time:.2f}s over 4 shards ({ratio:.2f}x, "
        f"cut={sharded.metadata['cut_edges']})"
    )
    experiment_recorder(report)
    if _usable_cpus() >= 2:
        soft_assert_speedup(
            ratio, "sharded run at n=2**17", SHARD_SPEEDUP_TARGET
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="large shard benchmarks run only with REPRO_BENCH_LARGE=1",
)
def test_bench_million_node_smoke():
    """A million-node sharded run completes and stays within sane rounds."""
    result = _simulate(HUGE_NODES, 4, seed=3)
    assert result.reached_output
    assert result.metadata["shard_count"] == 4
    assert result.metadata["halo_bytes_per_round"] == (
        2 * result.metadata["cut_edges"] * 8
    )
