"""E6 — Lemma 6.2: an rLBA simulated by an nFSM protocol on a path."""

from repro.analysis.experiments import experiment_lba_on_path
from repro.automata.languages import palindrome_lba, palindrome_reference
from repro.automata.lba_to_nfsm import decide_word_on_path


def test_bench_palindrome_on_a_path(benchmark, experiment_recorder):
    word = list("abbaab" * 2)

    def run_once():
        return decide_word_on_path(palindrome_lba(), word, seed=3)

    verdict, _ = benchmark(run_once)
    assert verdict == palindrome_reference(word)

    report = experiment_lba_on_path(word_lengths=(0, 1, 3, 5, 8, 12))
    experiment_recorder(report)
    assert report.passed
