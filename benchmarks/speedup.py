"""Backend speedup measurement shared by the adversarial benchmarks.

Wall-clock ratios are noise-sensitive on shared CI runners, so missing the
target emits a warning (visible in the terminal summary and the recorded
reports) instead of failing the run; exporting ``REPRO_STRICT_SPEEDUP=1``
turns the assertion hard for dedicated perf machines.
"""

from __future__ import annotations

import os
import time
import warnings

SPEEDUP_TARGET = 5.0

#: The synchronous lazy-table path interleaves array rounds with on-demand
#: cell evaluation, so its headline target is lower than the asynchronous
#: batch engine's.
SYNC_SPEEDUP_TARGET = 3.0


def soft_assert_speedup(
    ratio: float, context: str, target: float = SPEEDUP_TARGET
) -> None:
    if ratio >= target:
        return
    message = (
        f"{context}: measured only {ratio:.2f}x (target >= {target}x); "
        "soft assertion - set REPRO_STRICT_SPEEDUP=1 to fail hard"
    )
    if os.environ.get("REPRO_STRICT_SPEEDUP") == "1":
        raise AssertionError(message)
    warnings.warn(message, stacklevel=2)


def measure_backend_speedup(
    graph,
    protocol,
    *,
    experiment_id: str,
    title: str,
    experiment_recorder,
    **run_kwargs,
) -> float:
    """Time one asynchronous run on both backends and record the ratio.

    Asserts the parity contract (identical outputs / normalised run-time /
    step counts), records an :class:`ExperimentReport` with the measured
    wall-clock numbers, and soft-asserts the ≥ ``SPEEDUP_TARGET`` win.
    """
    from repro.analysis.reporting import ExperimentReport
    from repro.scheduling.async_engine import _run_asynchronous as run_asynchronous
    from repro.scheduling.compiled import LazyStrictTable

    table = LazyStrictTable(protocol)

    start = time.perf_counter()
    interpreted = run_asynchronous(graph, protocol, backend="python", **run_kwargs)
    python_time = time.perf_counter() - start

    # First vectorized run warms the shared lazy table; time the warm run.
    run_asynchronous(graph, protocol, backend="vectorized", table=table, **run_kwargs)
    start = time.perf_counter()
    vectorized = run_asynchronous(
        graph, protocol, backend="vectorized", table=table, **run_kwargs
    )
    vectorized_time = time.perf_counter() - start

    assert interpreted.reached_output and vectorized.reached_output
    assert interpreted.outputs == vectorized.outputs
    assert interpreted.time_units == vectorized.time_units
    assert interpreted.total_node_steps == vectorized.total_node_steps

    ratio = python_time / vectorized_time
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim="event-batched execution amortises per-event overhead at large n",
        headers=["n", "steps", "time units", "python s", "vectorized s", "speedup"],
    )
    report.add_row(
        graph.num_nodes,
        interpreted.total_node_steps,
        round(interpreted.time_units, 1),
        round(python_time, 2),
        round(vectorized_time, 2),
        round(ratio, 1),
    )
    report.conclusion = f"measured {ratio:.1f}x (target >= {SPEEDUP_TARGET}x, soft)"
    report.passed = True  # parity asserted above; the speedup is soft
    experiment_recorder(report)
    soft_assert_speedup(ratio, f"{experiment_id} n={graph.num_nodes}")
    return ratio


def measure_sync_backend_speedup(
    graph,
    protocol_factory,
    *,
    experiment_id: str,
    title: str,
    experiment_recorder,
    target: float = SYNC_SPEEDUP_TARGET,
    **run_kwargs,
) -> float:
    """Time one *synchronous* run on both backends and record the ratio.

    Built for synchronizer-/multiquery-compiled protocols: the vectorized
    leg runs off a shared :class:`~repro.scheduling.compiled.
    LazyExtendedTable` (the first run warms it, the timed run is warm —
    matching how sweeps amortise the tabulation).  Asserts the parity
    contract, records an :class:`ExperimentReport`, and soft-asserts the
    ≥ *target* win.
    """
    from repro.analysis.reporting import ExperimentReport
    from repro.scheduling.compiled import LazyExtendedTable
    from repro.scheduling.sync_engine import _run_synchronous as run_synchronous

    table = LazyExtendedTable(protocol_factory())

    start = time.perf_counter()
    interpreted = run_synchronous(
        graph, protocol_factory(), backend="python", **run_kwargs
    )
    python_time = time.perf_counter() - start

    # First vectorized run warms the shared lazy table; time the warm run.
    run_synchronous(
        graph, protocol_factory(), backend="vectorized", table=table, **run_kwargs
    )
    start = time.perf_counter()
    vectorized = run_synchronous(
        graph, protocol_factory(), backend="vectorized", table=table, **run_kwargs
    )
    vectorized_time = time.perf_counter() - start

    assert interpreted.reached_output and vectorized.reached_output
    assert interpreted.summary_fields() == vectorized.summary_fields()
    assert vectorized.metadata["backend_mode"] == "lazy"

    ratio = python_time / vectorized_time
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim=(
            "lazy multi-letter tables make compiled protocols vectorize "
            "synchronously"
        ),
        headers=["n", "rounds", "table states", "python s", "vectorized s", "speedup"],
    )
    report.add_row(
        graph.num_nodes,
        interpreted.rounds,
        table.num_states,
        round(python_time, 2),
        round(vectorized_time, 2),
        round(ratio, 1),
    )
    report.conclusion = f"measured {ratio:.1f}x (target >= {target}x, soft)"
    report.passed = True  # parity asserted above; the speedup is soft
    experiment_recorder(report)
    soft_assert_speedup(ratio, f"{experiment_id} n={graph.num_nodes}", target)
    return ratio
