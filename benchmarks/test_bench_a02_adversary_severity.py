"""A2 — ablation: adversary severity versus the normalised run-time measure.

Making part of the network much slower stretches the wall-clock execution
but must not blow up the paper's normalised run-time (time divided by the
largest adversarial parameter) — that is what makes the measure meaningful.
The severity sweep runs on both asynchronous backends; a large-n companion
test measures the vectorized engine's speedup under the severe adversary
(soft assertion, see :mod:`speedup`).
"""

from repro.analysis.experiments import experiment_adversary_severity
from repro.compilers import compile_to_asynchronous
from repro.graphs import gnp_random_graph
from repro.graphs.generators import binary_tree
from repro.protocols.broadcast import BroadcastProtocol, broadcast_inputs
from repro.protocols.mis import MISProtocol
from repro.scheduling.adversary import SkewedRatesAdversary
from repro.scheduling.async_engine import _run_asynchronous as run_asynchronous

from speedup import measure_backend_speedup


def test_bench_severe_adversary(benchmark):
    # Benchmarked on the interpreted backend: at n = 8 ``auto`` would pick it
    # anyway, and the backend comparison lives in the large-n test below.
    graph = gnp_random_graph(8, 0.4, seed=22)
    compiled = compile_to_asynchronous(MISProtocol())

    def run_once():
        return run_asynchronous(
            graph, compiled, seed=23,
            adversary=SkewedRatesAdversary(slow_fraction=0.3, slow_factor=32.0),
            adversary_seed=24, max_events=6_000_000,
        )

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.reached_output


def test_bench_a2_severity_report(experiment_recorder):
    report = experiment_adversary_severity(slow_factors=(1.0, 4.0, 16.0, 64.0), size=8)
    experiment_recorder(report)
    assert report.passed


def test_bench_a2_vectorized_speedup_under_severe_adversary(experiment_recorder):
    """The severity workload at n = 1025 on both backends: identical
    normalised run-times; the vectorized engine should win ≥ 5× (soft)."""
    measure_backend_speedup(
        binary_tree(1025),
        compile_to_asynchronous(BroadcastProtocol()),
        experiment_id="A2-backend",
        title="Asynchronous backend speedup under a severe adversary (x8 slowdown)",
        experiment_recorder=experiment_recorder,
        inputs=broadcast_inputs(0),
        seed=3,
        adversary=SkewedRatesAdversary(slow_fraction=0.3, slow_factor=8.0),
        adversary_seed=4,
        max_events=50_000_000,
        raise_on_timeout=False,
    )
