"""A2 — ablation: adversary severity versus the normalised run-time measure.

Making part of the network much slower stretches the wall-clock execution
but must not blow up the paper's normalised run-time (time divided by the
largest adversarial parameter) — that is what makes the measure meaningful.
"""

from repro.analysis.experiments import experiment_adversary_severity
from repro.compilers import compile_to_asynchronous
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol
from repro.scheduling.adversary import SkewedRatesAdversary
from repro.scheduling.async_engine import run_asynchronous


def test_bench_severe_adversary(benchmark, experiment_recorder):
    graph = gnp_random_graph(8, 0.4, seed=22)
    compiled = compile_to_asynchronous(MISProtocol())

    def run_once():
        return run_asynchronous(
            graph, compiled, seed=23,
            adversary=SkewedRatesAdversary(slow_fraction=0.3, slow_factor=32.0),
            adversary_seed=24, max_events=6_000_000,
        )

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.reached_output

    report = experiment_adversary_severity(slow_factors=(1.0, 4.0, 16.0, 64.0), size=8)
    experiment_recorder(report)
    assert report.passed
