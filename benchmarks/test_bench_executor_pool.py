"""Pooled-sweep speedup: the multiprocess executor on an E1-style workload.

Shards an E1-style MIS scaling sweep (families × sizes × repetitions on the
interpreted backend, so each cell is CPU-bound) over a 4-worker process pool
and compares wall-clock time against the serial sweep.  The records must be
bitwise-identical — the pool buys time, never different numbers — and the
headline target is a ≥ 2× win.  Like every wall-clock assertion in this
suite the target is soft (warning, ``REPRO_STRICT_SPEEDUP=1`` makes it
hard); on boxes without at least two usable cores the speedup half is
skipped and only the parity contract is checked.
"""

from __future__ import annotations

import os
import time

from repro.analysis.reporting import ExperimentReport
from repro.api import RunSpec, Simulation

from speedup import soft_assert_speedup

POOL_SPEEDUP_TARGET = 2.0
POOL_WORKERS = 4

SIZES = [64, 128, 256]
REPETITIONS = 2
FAMILIES = ["gnp_sparse", "random_tree"]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sweep(workers: int):
    # workers=1 pins the serial baseline explicitly — passing None would
    # consult REPRO_WORKERS and silently pool the baseline too.
    return Simulation().sweep(
        RunSpec(protocol="mis", seed=1, backend="python"),
        families=FAMILIES,
        sizes=SIZES,
        repetitions=REPETITIONS,
        workers=workers,
    )


def test_bench_pooled_sweep_speedup(experiment_recorder):
    start = time.perf_counter()
    serial = _sweep(1)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    pooled = _sweep(POOL_WORKERS)
    pooled_time = time.perf_counter() - start

    # Determinism first: pooled results are the serial results, bitwise.
    assert pooled.records == serial.records
    assert serial.all_valid()

    ratio = serial_time / pooled_time
    report = ExperimentReport(
        experiment_id="EXEC",
        title="Multiprocess executor: pooled E1-style sweep",
        paper_claim="sharding independent cells over workers is pure speedup",
        headers=["cells", "workers", "serial s", "pooled s", "speedup", "cpus"],
    )
    report.add_row(
        len(serial.records),
        POOL_WORKERS,
        round(serial_time, 2),
        round(pooled_time, 2),
        round(ratio, 2),
        _usable_cpus(),
    )
    report.conclusion = (
        f"{len(serial.records)} cells, {POOL_WORKERS} workers: "
        f"{serial_time:.2f}s serial vs {pooled_time:.2f}s pooled "
        f"({ratio:.2f}x), records bitwise-identical"
    )
    report.passed = True
    experiment_recorder(report)

    if _usable_cpus() >= 2:
        soft_assert_speedup(
            ratio,
            f"pooled {POOL_WORKERS}-worker E1-style sweep",
            target=POOL_SPEEDUP_TARGET,
        )


def test_bench_pooled_tables_are_published_not_rebuilt():
    """Shared-table publication: workers never pay the table-build cost.

    Before publication every pool worker re-compiled each distinct
    workload's tables on first use — a k x build cost for k workers.  Now
    the parent compiles each workload once, publishes the bundles through
    a shared-memory segment, and the pool initializer seeds every worker's
    session cache — so *all* worker-side lookups are cache hits, which the
    merged cache counters make directly observable.
    """
    session = Simulation()
    sweep = session.sweep(
        RunSpec(protocol="mis", seed=1),
        families=FAMILIES,
        sizes=[32, 64],
        repetitions=REPETITIONS,
        workers=2,
    )
    assert sweep.all_valid()
    info = session.cache_info()
    cells = len(sweep.records)
    # One lookup per cell, all hits: the k x rebuild cost is gone.
    assert info["hits"] == cells
    assert info["misses"] == 0
    # Compiled tables depend on the protocol alone (not graph family or
    # size), so the whole sweep is one published workload — one entry,
    # built exactly once, parent-side.
    assert info["entries"] == 1
