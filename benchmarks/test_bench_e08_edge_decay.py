"""E8 — Lemma 4.3: the virtual graph loses a constant edge fraction per tournament."""

from repro.analysis.experiments import experiment_edge_decay
from repro.analysis.tournaments import trace_mis_execution
from repro.graphs import gnp_random_graph


def test_bench_edge_decay_measurement(benchmark, experiment_recorder):
    graph = gnp_random_graph(192, 4.0 / 192, seed=8)

    def run_once():
        trace, _ = trace_mis_execution(graph, seed=13)
        return trace.edge_decay()

    decay = benchmark(run_once)
    assert decay[0] == graph.num_edges and decay[-1] == 0

    report = experiment_edge_decay(sizes=(64, 128, 256), repetitions=3)
    experiment_recorder(report)
    assert report.passed
