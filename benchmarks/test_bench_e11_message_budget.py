"""E11 — Per-message information budget: O(1)-bit letters vs Θ(log n)-bit messages."""

from repro.analysis.experiments import experiment_message_budget
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol
from repro.scheduling.sync_engine import _run_synchronous as run_synchronous


def test_bench_message_accounting(benchmark, experiment_recorder):
    graph = gnp_random_graph(256, 4.0 / 256, seed=11)

    def run_once():
        return run_synchronous(graph, MISProtocol(), seed=14)

    result = benchmark(run_once)
    assert result.total_messages > 0

    report = experiment_message_budget(sizes=(64, 256, 1024))
    experiment_recorder(report)
    assert report.passed
