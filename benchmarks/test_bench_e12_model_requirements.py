"""E12 — Model requirements (M1)–(M4): protocol sizes are universal constants."""

from repro.analysis.experiments import experiment_model_requirements
from repro.compilers import compile_to_asynchronous
from repro.protocols.mis import MISProtocol


def test_bench_protocol_compilation(benchmark, experiment_recorder):
    def compile_once():
        compiled = compile_to_asynchronous(MISProtocol())
        return compiled.census()

    census = benchmark(compile_once)
    assert census.is_constant_size()

    report = experiment_model_requirements()
    experiment_recorder(report)
    assert report.passed
