"""E1 — Theorem 4.5: the Stone Age MIS runs in O(log² n) rounds.

The benchmark times one representative MIS execution (n = 512 sparse G(n,p));
the recorded experiment report sweeps n over two decades, prints rounds vs
``log² n`` and classifies the measured growth.
"""

from repro.analysis.experiments import experiment_mis_scaling
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import run_synchronous
from repro.verification import is_maximal_independent_set


def test_bench_mis_single_run(benchmark, experiment_recorder):
    graph = gnp_random_graph(512, 4.0 / 512, seed=1)

    def run_once():
        return run_synchronous(graph, MISProtocol(), seed=7)

    result = benchmark(run_once)
    assert is_maximal_independent_set(graph, mis_from_result(result))

    report = experiment_mis_scaling(sizes=[16, 32, 64, 128, 256, 512, 1024], repetitions=3)
    experiment_recorder(report)
    assert report.passed
