"""E1 — Theorem 4.5: the Stone Age MIS runs in O(log² n) rounds.

The benchmark times one representative MIS execution (n = 512 sparse G(n,p))
on both synchronous backends — the interpreted reference engine and the
vectorized NumPy engine — and checks they agree seed-for-seed; the recorded
experiment report sweeps n over two decades, prints rounds vs ``log² n`` and
classifies the measured growth.  A separate test asserts the headline win of
the vectorized backend: at the largest sweep size it must be at least 5×
faster than the interpreter while producing the identical result.
"""

import time

import pytest

from repro.analysis.experiments import experiment_mis_scaling
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling.sync_engine import _run_synchronous as run_synchronous
from repro.verification import is_maximal_independent_set


@pytest.mark.parametrize("backend", ["python", "vectorized"])
def test_bench_mis_single_run(benchmark, backend):
    graph = gnp_random_graph(512, 4.0 / 512, seed=1)

    def run_once():
        return run_synchronous(graph, MISProtocol(), seed=7, backend=backend)

    result = benchmark(run_once)
    assert is_maximal_independent_set(graph, mis_from_result(result))
    reference = run_synchronous(graph, MISProtocol(), seed=7, backend="python")
    assert result.summary_fields() == reference.summary_fields()


def test_bench_mis_scaling_report(experiment_recorder):
    report = experiment_mis_scaling(sizes=[16, 32, 64, 128, 256, 512, 1024], repetitions=3)
    experiment_recorder(report)
    assert report.passed


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_mis_vectorized_speedup_at_largest_n():
    """The vectorized backend must beat the interpreter ≥ 5× at n = 1024."""
    graph = gnp_random_graph(1024, 4.0 / 1024, seed=1)
    protocol_seed = 7

    interpreted = run_synchronous(
        graph, MISProtocol(), seed=protocol_seed, backend="python"
    )
    vectorized = run_synchronous(
        graph, MISProtocol(), seed=protocol_seed, backend="vectorized"
    )
    assert interpreted.summary_fields() == vectorized.summary_fields()

    # Wall-clock assertions are noise-sensitive on shared CI runners, so
    # measure best-of-k and allow a few attempts before failing; the real
    # ratio is ~25×, leaving a wide margin over the asserted 5×.
    ratios = []
    for _ in range(3):
        python_time = _best_of(
            2,
            lambda: run_synchronous(
                graph, MISProtocol(), seed=protocol_seed, backend="python"
            ),
        )
        vectorized_time = _best_of(
            3,
            lambda: run_synchronous(
                graph, MISProtocol(), seed=protocol_seed, backend="vectorized"
            ),
        )
        ratios.append(python_time / vectorized_time)
        if ratios[-1] >= 5.0:
            break
    assert ratios[-1] >= 5.0, (
        f"expected ≥ 5× speedup at n=1024, measured ratios {ratios} "
        f"(last: python {python_time:.3f}s, vectorized {vectorized_time:.3f}s)"
    )
