"""E9 — Observations 5.2/5.3: good-node fraction and active-node decay on trees."""

from repro.analysis.experiments import experiment_coloring_decay
from repro.graphs import random_tree
from repro.graphs.properties import good_nodes_tree


def test_bench_good_node_fraction(benchmark, experiment_recorder):
    tree = random_tree(2048, seed=9)

    def run_once():
        return good_nodes_tree(tree)

    good = benchmark(run_once)
    assert len(good) >= tree.num_nodes / 5

    report = experiment_coloring_decay(sizes=(64, 256, 1024), repetitions=3)
    experiment_recorder(report)
    assert report.passed
