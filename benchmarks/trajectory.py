"""Append pytest-benchmark headline numbers to a perf-trajectory log.

CI's benchmark-smoke job writes a ``BENCH_<run>.json`` artifact with
``pytest --benchmark-json``; this script distils each such file into one
JSON line — run id, commit, and per-benchmark ``{min, mean, stddev,
rounds}`` seconds — and appends it to a trajectory file (JSON Lines), so
the performance history across PRs stays machine-readable without anyone
having to download and diff full artifacts::

    python benchmarks/trajectory.py BENCH_123.json --append trajectory.jsonl

With no ``--append`` the headline line is printed to stdout only.  Pure
stdlib; tolerant of missing fields so old and new pytest-benchmark schemas
both work.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def headline(bench_json: dict, source: str) -> dict:
    """The one-line summary of one pytest-benchmark JSON document."""
    machine = bench_json.get("machine_info", {})
    commit = bench_json.get("commit_info", {})
    benchmarks = {}
    for bench in bench_json.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry = {
            "min": stats.get("min"),
            "mean": stats.get("mean"),
            "stddev": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
        # Benchmarks tag structured counters (e.g. the result store's
        # hit/miss stats) into extra_info; carry them into the trajectory.
        if bench.get("extra_info"):
            entry["extra_info"] = bench["extra_info"]
        benchmarks[bench.get("fullname", bench.get("name", "?"))] = entry
    return {
        "source": source,
        "datetime": bench_json.get("datetime"),
        "commit": commit.get("id"),
        "branch": commit.get("branch"),
        "python": machine.get("python_version"),
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Distil pytest-benchmark JSON into trajectory lines.",
    )
    parser.add_argument(
        "inputs",
        nargs="+",
        type=Path,
        help="pytest-benchmark JSON files (BENCH_*.json)",
    )
    parser.add_argument(
        "--append",
        type=Path,
        default=None,
        metavar="TRAJECTORY",
        help="JSONL file to append the headline lines to",
    )
    args = parser.parse_args(argv)

    lines = []
    for path in args.inputs:
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        line = json.dumps(headline(document, path.name), sort_keys=True)
        lines.append(line)
        print(line)

    if args.append is not None:
        args.append.parent.mkdir(parents=True, exist_ok=True)
        with args.append.open("a") as handle:
            for line in lines:
                handle.write(line + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
