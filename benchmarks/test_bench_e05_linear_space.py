"""E5 — Lemma 6.1: simulating the whole network in linear space."""

from repro.analysis.experiments import experiment_linear_space
from repro.automata.nfsm_to_lba import simulate_with_linear_space
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol


def test_bench_linear_space_simulation(benchmark, experiment_recorder):
    graph = gnp_random_graph(256, 4.0 / 256, seed=5)

    def run_once():
        return simulate_with_linear_space(graph, MISProtocol(), seed=8)

    result = benchmark(run_once)
    assert result.reached_output
    assert result.metadata["space_report"].extra_cells_per_entry <= 2.0

    report = experiment_linear_space(sizes=(16, 64, 256, 1024))
    experiment_recorder(report)
    assert report.passed
