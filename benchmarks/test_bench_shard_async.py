"""Sharded asynchronous execution: time-bucketed event batches over shards.

The async sharded backend (`repro/scheduling/sharded_async_engine.py`)
splits the node set of one asynchronous run across shared-memory workers
and exchanges only cut-edge deliveries at bucket boundaries.  The default
smoke half verifies the contract cheaply — bitwise parity with the
unsharded counter-rng run plus partition counters in ``extra_info``.  The
large half (gated behind ``REPRO_BENCH_LARGE=1``, CI's benchmark-smoke
leg) times ``shards=4`` against ``shards=1`` under the synchronous
adversary — the widest buckets, i.e. the best case the bucket contract
promises — on a ``2**15``-node graph with a soft ≥ 2× target.

Wall-clock targets are soft everywhere (``REPRO_STRICT_SPEEDUP=1`` makes
them hard) and skipped outright on single-core boxes, where sharding can
only lose.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.reporting import ExperimentReport
from repro.api import RunSpec, Simulation
from repro.scheduling.sharded_async_engine import sharding_supported

from speedup import soft_assert_speedup

ASYNC_SHARD_SPEEDUP_TARGET = 2.0
SMOKE_NODES = 512
SMOKE_MAX_EVENTS = 200_000
LARGE_NODES = 2**15
#: Fixed event budget for the timed pair: parity holds on truncated runs
#: (both engines count identical per-bucket events), so timing a fixed
#: budget compares the bucket loops without waiting for MIS termination
#: at this size.
LARGE_MAX_EVENTS = 2_000_000

pytestmark = pytest.mark.skipif(
    not sharding_supported(), reason="platform lacks POSIX shared memory"
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _simulate(nodes: int, shards: int, *, adversary: str = "synchronous",
              max_events: int, seed: int = 1):
    return Simulation().simulate(
        RunSpec(
            protocol="mis",
            nodes=nodes,
            graph="gnp_sparse",
            seed=seed,
            environment="async",
            adversary=adversary,
            shards=shards,
            max_events=max_events,
        ),
        raise_on_timeout=False,
    )


def test_bench_sharded_async_run_smoke(benchmark):
    """Default smoke: a sharded async run, parity-checked and counted."""
    reference = _simulate(
        SMOKE_NODES, 1, adversary="uniform", max_events=SMOKE_MAX_EVENTS
    )

    result = benchmark(
        _simulate, SMOKE_NODES, 2, adversary="uniform",
        max_events=SMOKE_MAX_EVENTS,
    )

    assert result.summary_fields() == reference.summary_fields()
    assert result.total_node_steps == reference.total_node_steps
    assert result.time_units == reference.time_units
    assert result.metadata["backend_mode"] == "sharded"
    benchmark.extra_info["shards"] = result.metadata["shard_count"]
    benchmark.extra_info["cut_edges"] = result.metadata["cut_edges"]
    benchmark.extra_info["halo_bytes_per_bucket"] = result.metadata[
        "halo_bytes_per_bucket"
    ]
    benchmark.extra_info["events"] = result.total_node_steps


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="large shard benchmarks run only with REPRO_BENCH_LARGE=1",
)
def test_bench_async_shard_speedup_large(experiment_recorder):
    """shards=4 vs shards=1 on a 2**15-node graph: soft >= 2x target."""
    start = time.perf_counter()
    serial = _simulate(LARGE_NODES, 1, max_events=LARGE_MAX_EVENTS)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    sharded = _simulate(LARGE_NODES, 4, max_events=LARGE_MAX_EVENTS)
    sharded_time = time.perf_counter() - start

    # Determinism first: sharding buys time, never different numbers.
    assert sharded.summary_fields() == serial.summary_fields()
    assert sharded.total_node_steps == serial.total_node_steps
    assert sharded.time_units == serial.time_units

    ratio = serial_time / sharded_time
    report = ExperimentReport(
        experiment_id="SHARD-ASYNC",
        title="Sharded asynchronous execution on one large graph",
        paper_claim="bucket-boundary halo exchange shards asynchronous time",
        headers=["nodes", "shards", "serial s", "sharded s", "speedup", "cut", "cpus"],
    )
    report.add_row(
        LARGE_NODES,
        4,
        round(serial_time, 2),
        round(sharded_time, 2),
        round(ratio, 2),
        sharded.metadata["cut_edges"],
        _usable_cpus(),
    )
    report.conclusion = (
        f"n={LARGE_NODES}: {serial_time:.2f}s unsharded vs "
        f"{sharded_time:.2f}s over 4 shards ({ratio:.2f}x, "
        f"cut={sharded.metadata['cut_edges']})"
    )
    experiment_recorder(report)
    if _usable_cpus() >= 2:
        soft_assert_speedup(
            ratio, f"sharded async run at n={LARGE_NODES}",
            ASYNC_SHARD_SPEEDUP_TARGET,
        )
