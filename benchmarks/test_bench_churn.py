"""Dynamic-environment overhead: churn sweep vs its static counterpart.

The dynamic engine executes a run as warm-started synchronous segments, so
its only cost on top of a static run should be the churn bookkeeping between
segments (event sampling, snapshot rebuild, restart-set computation) and the
extra rounds the re-convergence itself needs.  The smoke half benchmarks a
dynamic run at n=1025 and tags the per-disturbance measurement into
``extra_info`` for the perf-trajectory log; the overhead half compares
per-round cost against the static run of the identical spec with a soft
≤ 2× target on the disturbance-free portion (``REPRO_STRICT_SPEEDUP=1``
makes it hard, mirroring the other backend benchmarks).
"""

from __future__ import annotations

import os
import time

from repro.api import RunSpec, Simulation

CHURN_NODES = 1025
OVERHEAD_TARGET = 2.0


def _static_spec(seed: int = 1) -> RunSpec:
    return RunSpec(protocol="mis", nodes=CHURN_NODES, graph="gnp_sparse", seed=seed)


def _dynamic_spec(seed: int = 1) -> RunSpec:
    return _static_spec(seed).replace(
        environment="dynamic",
        churn="burst",
        churn_params={"flips": 8, "disturbances": 3},
    )


def test_bench_dynamic_churn_run(benchmark):
    """Smoke: one dynamic n=1025 run, re-convergence tagged for the log."""
    session = Simulation()
    session.simulate(_dynamic_spec())  # warm: tables compiled outside the clock

    result = benchmark(session.simulate, _dynamic_spec(seed=2))

    assert result.reached_output
    benchmark.extra_info["disturbances"] = result.metadata["disturbances"]
    benchmark.extra_info["initial_rounds"] = result.metadata["initial_rounds"]
    benchmark.extra_info["reconvergence_rounds"] = result.metadata[
        "reconvergence_rounds"
    ]
    benchmark.extra_info["restart_counts"] = result.metadata["restart_counts"]
    benchmark.extra_info["total_rounds"] = result.rounds


def test_bench_dynamic_overhead_per_round():
    """Per-round cost of the dynamic path within 2× of the static engine.

    Both sides run the identical seeded workload on a warmed session; the
    comparison divides wall-clock by rounds executed, so the extra rounds
    dynamic runs legitimately need (re-convergence) don't count against
    the engine — only true bookkeeping overhead does.
    """
    repetitions = 3
    session = Simulation()
    session.simulate(_static_spec())
    session.simulate(_dynamic_spec())

    def _per_round(make_spec) -> float:
        start = time.perf_counter()
        rounds = 0
        for seed in range(2, 2 + repetitions):
            rounds += session.simulate(make_spec(seed)).rounds
        return (time.perf_counter() - start) / max(rounds, 1)

    static_cost = _per_round(_static_spec)
    dynamic_cost = _per_round(_dynamic_spec)
    ratio = dynamic_cost / static_cost

    message = (
        f"dynamic per-round cost {dynamic_cost * 1e6:.1f}us vs static "
        f"{static_cost * 1e6:.1f}us ({ratio:.2f}x, target <= {OVERHEAD_TARGET}x)"
    )
    if os.environ.get("REPRO_STRICT_SPEEDUP") == "1":
        assert ratio <= OVERHEAD_TARGET, message
    elif ratio > OVERHEAD_TARGET:  # soft target: report, don't fail
        print(f"SOFT TARGET MISSED: {message}")
    else:
        print(message)
