"""Result store: warm replay of an E1-style sweep versus cold execution.

The content-addressable store (`repro/api/store.py`) answers a seeded
workload from disk instead of re-running engines, so the warm replay of a
sweep should cost JSON decoding, not simulation.  The pytest-benchmark
half times the warm replay (and tags the run's store counters into
``extra_info`` so the perf-trajectory log carries hit/miss history); the
wall-clock half measures the cold/warm ratio on an interpreted-backend
sweep and soft-asserts the headline win.  Correctness is asserted hard
either way: zero engine runs and bitwise-identical records on every warm
pass.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import ExperimentReport
from repro.api import RunSpec, Simulation
from repro.core.counters import engine_runs

from speedup import soft_assert_speedup

STORE_SPEEDUP_TARGET = 3.0

SWEEP_KWARGS = {
    "families": ["gnp_sparse", "random_tree"],
    "sizes": [64, 128, 256],
    "repetitions": 2,
}


def _sweep(store):
    # backend="python" keeps each cell CPU-bound, as in the executor bench.
    return Simulation(store=store).sweep(
        RunSpec(protocol="mis", seed=1, backend="python"), **SWEEP_KWARGS
    )


def test_bench_warm_store_replay(benchmark, tmp_path):
    store = tmp_path / "store"
    cold = _sweep(store)

    def replay():
        return _sweep(store)

    warm = benchmark(replay)
    assert warm.records == cold.records

    stats = Simulation(store=store).store.stats()
    benchmark.extra_info["store"] = stats
    benchmark.extra_info["cells"] = len(cold.records)
    assert stats["entries"] == len(cold.records)


def test_bench_store_cold_vs_warm_speedup(tmp_path, experiment_recorder):
    store = tmp_path / "store"

    start = time.perf_counter()
    cold = _sweep(store)
    cold_time = time.perf_counter() - start

    engines_before = engine_runs()
    start = time.perf_counter()
    warm = _sweep(store)
    warm_time = time.perf_counter() - start

    # Correctness is hard: warm replay executes nothing and changes nothing.
    assert engine_runs() == engines_before
    assert warm.records == cold.records

    ratio = cold_time / warm_time
    report = ExperimentReport(
        experiment_id="STORE",
        title="Result store: warm replay of an E1-style sweep",
        paper_claim="seeded runs are pure functions of their spec — cache them",
        headers=["cells", "cold s", "warm s", "speedup", "engine runs (warm)"],
    )
    report.add_row(
        len(cold.records),
        round(cold_time, 2),
        round(warm_time, 3),
        round(ratio, 1),
        0,
    )
    report.conclusion = (
        f"{len(cold.records)} cells replayed from the store in {warm_time:.3f}s "
        f"({ratio:.1f}x vs cold), zero engine executions, records bitwise-identical"
    )
    report.passed = True
    experiment_recorder(report)
    soft_assert_speedup(
        ratio, "warm store replay of E1-style sweep", target=STORE_SPEEDUP_TARGET
    )
