"""E2 — Theorem 5.4: the Stone Age tree 3-coloring runs in O(log n) rounds.

Both synchronous backends are benchmarked on the representative n = 1024
random tree; they must agree seed-for-seed (the vectorized engine compiles
the ~280 reachable coloring states into dense tables, then executes whole
rounds as array operations).
"""

import pytest

from repro.analysis.experiments import experiment_coloring_scaling
from repro.graphs import random_tree
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.scheduling.sync_engine import _run_synchronous as run_synchronous
from repro.verification import is_proper_coloring


@pytest.mark.parametrize("backend", ["python", "vectorized"])
def test_bench_coloring_single_run(benchmark, backend):
    tree = random_tree(1024, seed=2)

    def run_once():
        return run_synchronous(
            tree, TreeColoringProtocol(), seed=5, max_rounds=50_000, backend=backend
        )

    result = benchmark(run_once)
    assert is_proper_coloring(tree, coloring_from_result(result))
    reference = run_synchronous(
        tree, TreeColoringProtocol(), seed=5, max_rounds=50_000, backend="python"
    )
    assert result.summary_fields() == reference.summary_fields()


def test_bench_coloring_scaling_report(experiment_recorder):
    report = experiment_coloring_scaling(
        sizes=[16, 32, 64, 128, 256, 512, 1024, 2048], repetitions=3
    )
    experiment_recorder(report)
    assert report.passed
