"""Shared benchmark fixtures.

Every benchmark module reproduces one experiment (E1–E12 in DESIGN.md): it
benchmarks a representative unit of work with pytest-benchmark *and* runs the
corresponding experiment harness once, recording the resulting report.  The
reports are printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures both
the timing table and the paper-versus-measured series EXPERIMENTS.md refers
to.
"""

from __future__ import annotations

import pytest

_REPORTS: list[str] = []


@pytest.fixture
def experiment_recorder():
    """Record an :class:`ExperimentReport` for the terminal summary."""

    def record(report) -> None:
        _REPORTS.append(report.render())

    return record


def pytest_terminal_summary(terminalreporter) -> None:  # pragma: no cover - reporting hook
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("Stone Age Distributed Computing — reproduction experiment reports")
    terminalreporter.write_line("=" * 78)
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
