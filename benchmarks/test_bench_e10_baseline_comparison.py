"""E10 — MIS round complexity across models (Stone Age vs LOCAL vs beeping)."""

from repro.analysis.experiments import experiment_baseline_comparison
from repro.baselines.luby import luby_mis
from repro.graphs import gnp_random_graph
from repro.verification import is_maximal_independent_set


def test_bench_luby_baseline(benchmark, experiment_recorder):
    graph = gnp_random_graph(512, 4.0 / 512, seed=10)

    def run_once():
        return luby_mis(graph, seed=12)

    selected, _ = benchmark(run_once)
    assert is_maximal_independent_set(graph, selected)

    report = experiment_baseline_comparison(sizes=(64, 256, 1024))
    experiment_recorder(report)
    assert report.passed
