#!/usr/bin/env python3
"""Quickstart: run the Stone Age protocols on small networks.

This example covers the three headline results of the paper in a few lines
each:

1. maximal independent set on an arbitrary random graph (Section 4),
2. 3-coloring of a random tree (Section 5),
3. the same MIS protocol compiled with the synchronizer (Section 3) and
   executed in the raw asynchronous model under an adversarial schedule.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    MISProtocol,
    TreeColoringProtocol,
    coloring_from_result,
    compile_to_asynchronous,
    gnp_random_graph,
    is_maximal_independent_set,
    is_proper_coloring,
    mis_from_result,
    random_tree,
    run_asynchronous,
    run_synchronous,
)
from repro.scheduling import SkewedRatesAdversary


def maximal_independent_set_demo() -> None:
    graph = gnp_random_graph(64, 0.08, seed=1)
    result = run_synchronous(graph, MISProtocol(), seed=7)
    independent_set = mis_from_result(result)
    print("== Maximal independent set (Theorem 4.5) ==")
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"rounds: {result.rounds}, MIS size: {len(independent_set)}")
    print(f"valid MIS: {is_maximal_independent_set(graph, independent_set)}")
    print()


def tree_coloring_demo() -> None:
    tree = random_tree(64, seed=2)
    result = run_synchronous(tree, TreeColoringProtocol(), seed=3)
    colors = coloring_from_result(result)
    print("== Tree 3-coloring (Theorem 5.4) ==")
    print(f"tree: {tree.num_nodes} nodes, rounds: {result.rounds}")
    print(f"colors used: {sorted(set(colors.values()))}")
    print(f"proper coloring: {is_proper_coloring(tree, colors)}")
    print()


def asynchronous_demo() -> None:
    graph = gnp_random_graph(10, 0.3, seed=4)
    compiled = compile_to_asynchronous(MISProtocol())
    result = run_asynchronous(
        graph,
        compiled,
        seed=5,
        adversary=SkewedRatesAdversary(slow_fraction=0.3, slow_factor=10.0),
        adversary_seed=6,
    )
    independent_set = mis_from_result(result)
    print("== Synchronizer + adversarial asynchrony (Theorem 3.1) ==")
    print(f"compiled alphabet size: {len(compiled.alphabet)} letters (still a constant)")
    print(f"normalised run-time: {result.time_units:.1f} time units, "
          f"{result.total_node_steps} node steps")
    print(f"valid MIS under the adversary: {is_maximal_independent_set(graph, independent_set)}")


def main() -> None:
    maximal_independent_set_demo()
    tree_coloring_demo()
    asynchronous_demo()


if __name__ == "__main__":
    main()
