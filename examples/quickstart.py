#!/usr/bin/env python3
"""Quickstart: run the Stone Age protocols through the Simulation API.

This example covers the three headline results of the paper in a few lines
each, all through one :class:`repro.api.Simulation` session and declarative
:class:`repro.api.RunSpec` descriptions:

1. maximal independent set on an arbitrary random graph (Section 4),
2. 3-coloring of a random tree (Section 5),
3. the same MIS protocol compiled with the synchronizer (Section 3) and
   executed in the raw asynchronous model under an adversarial schedule.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    RunSpec,
    Simulation,
    coloring_from_result,
    is_maximal_independent_set,
    is_proper_coloring,
    mis_from_result,
)

session = Simulation()


def maximal_independent_set_demo() -> None:
    spec = RunSpec(protocol="mis", nodes=64, graph="gnp_sparse", seed=7)
    result = session.simulate(spec)
    graph = result.graph
    independent_set = mis_from_result(result)
    print("== Maximal independent set (Theorem 4.5) ==")
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"rounds: {result.rounds}, MIS size: {len(independent_set)}")
    print(f"valid MIS: {is_maximal_independent_set(graph, independent_set)}")
    print(f"backend: {result.metadata['backend']} ({result.metadata['backend_mode']})")
    print()


def tree_coloring_demo() -> None:
    spec = RunSpec(protocol="coloring", nodes=64, graph="random_tree", seed=3, graph_seed=2)
    result = session.simulate(spec)
    colors = coloring_from_result(result)
    print("== Tree 3-coloring (Theorem 5.4) ==")
    print(f"tree: {result.graph.num_nodes} nodes, rounds: {result.rounds}")
    print(f"colors used: {sorted(set(colors.values()))}")
    print(f"proper coloring: {is_proper_coloring(result.graph, colors)}")
    print()


def asynchronous_demo() -> None:
    # The same MIS protocol, now in the raw model of Section 2: the spec
    # switches the environment and names an adversary; the session compiles
    # the protocol with the synchronizer behind the scenes.
    spec = RunSpec(
        protocol="mis",
        nodes=10,
        graph="gnp_dense",
        seed=5,
        graph_seed=4,
        environment="async",
        adversary="skewed-rates",
        adversary_seed=6,
        adversary_params={"slow_fraction": 0.3, "slow_factor": 10.0},
    )
    result = session.simulate(spec)
    independent_set = mis_from_result(result)
    print("== Synchronizer + adversarial asynchrony (Theorem 3.1) ==")
    print(f"normalised run-time: {result.time_units:.1f} time units, "
          f"{result.total_node_steps} node steps")
    print(f"valid MIS under the adversary: "
          f"{is_maximal_independent_set(result.graph, independent_set)}")
    # Specs round-trip through plain dictionaries / JSON, so any scenario
    # shown here can be saved, shared, and replayed bit-for-bit:
    assert RunSpec.from_dict(spec.to_dict()) == spec
    print(f"spec round-trips through its dict form: adversary {spec.adversary!r} preserved")


def main() -> None:
    maximal_independent_set_demo()
    tree_coloring_demo()
    asynchronous_demo()


if __name__ == "__main__":
    main()
