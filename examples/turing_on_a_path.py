#!/usr/bin/env python3
"""Computational power (Section 6): a Turing-style computation on a chain of FSMs.

Lemma 6.2 shows that a path of constant-size finite state machines can carry
out any linear-bounded-automaton computation: each node stores one tape cell,
the node under the head is the only active one, and the head is handed from
neighbour to neighbour with constant-size transfer letters.

This example checks palindromes and balanced parentheses on a chain of cells,
compares the verdicts with the sequential machines, and then runs the reverse
direction (Lemma 6.1): the whole network execution of the Stone Age MIS is
replayed on a single flat tape using only O(1) extra cells per node and edge.
"""

from __future__ import annotations

from repro.automata import (
    LinearSpaceNetworkSimulator,
    balanced_parentheses_lba,
    decide_word_on_path,
    palindrome_lba,
)
from repro.api import Simulation
from repro.graphs import gnp_random_graph
from repro.protocols.mis import MISProtocol


def chain_of_cells_demo() -> None:
    print("== Lemma 6.2: an rLBA simulated by FSMs on a path ==")
    samples = {
        palindrome_lba(): ["abba", "abab", "racecar".replace("r", "a").replace("c", "b").replace("e", "a"), ""],
        balanced_parentheses_lba(): ["(()())", "(()", "", ")("],
    }
    for machine, words in samples.items():
        print(f"\nmachine: {machine.name}")
        for word in words:
            sequential = machine.run(word)
            verdict, network = decide_word_on_path(machine, word, seed=1)
            agreement = "==" if verdict == sequential.accepted else "!="
            print(
                f"  word {word!r:>10}: sequential={sequential.accepted} "
                f"{agreement} path-network={verdict} "
                f"(LBA steps {sequential.steps}, network rounds {network.rounds}, "
                f"{network.graph.num_nodes} cells)"
            )


def linear_space_demo() -> None:
    print("\n== Lemma 6.1: the whole network on a linear tape ==")
    graph = gnp_random_graph(60, 0.07, seed=3)
    simulator = LinearSpaceNetworkSimulator(graph, MISProtocol(), seed=4)
    tape_result = simulator.run()
    engine_result = Simulation().run_protocol(graph, MISProtocol(), seed=4, backend="python")
    space = simulator.space_report()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"tape cells: {space.input_cells} for the input encoding, "
          f"{space.extra_cells} extra ({space.extra_cells_per_entry:.2f} per entry)")
    print(f"identical to the reference engine execution: "
          f"{tape_result.final_states == engine_result.final_states}")


def main() -> None:
    chain_of_cells_demo()
    linear_space_demo()


if __name__ == "__main__":
    main()
