#!/usr/bin/env python3
"""Biological scenario: sensory organ precursor (SOP) selection in a fly.

The paper motivates the nFSM model with biological cellular networks and
points to Afek et al. (Science 2011), who showed that the selection of
sensory organ precursor cells during fly nervous-system development solves
exactly the maximal-independent-set problem: each selected cell inhibits its
neighbours through Notch/Delta signalling, and eventually every cell is
either selected or inhibited by an adjacent selected cell.

This example models a patch of epithelium as a hexagonal-ish lattice (a grid
with diagonal contacts), then selects SOPs twice:

* with the Stone Age MIS protocol — each cell is a seven-state FSM emitting
  one of seven "protein levels" and reading only presence/absence of each
  level in its neighbourhood (bounding parameter b = 1);
* with the beeping SOP-selection algorithm of Afek et al. — the closest
  published biological model, which however needs every cell to "know" an
  upper bound on the tissue size in order to ramp its firing probability.

Both produce valid SOP patterns; the Stone Age protocol does it with strictly
weaker cells.
"""

from __future__ import annotations

import argparse

from repro.api import Simulation
from repro.baselines.beeping import sop_selection_mis
from repro.graphs import Graph, grid_graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.verification import is_maximal_independent_set


def epithelium(rows: int, cols: int) -> Graph:
    """A grid of cells with one diagonal contact per square (brick-like packing)."""
    base = grid_graph(rows, cols)
    diagonals = []
    for r in range(rows - 1):
        for c in range(cols - 1):
            diagonals.append((r * cols + c, (r + 1) * cols + c + 1))
    return base.with_edges(diagonals)


def render_pattern(rows: int, cols: int, selected: set[int]) -> str:
    """ASCII picture of the tissue: '*' = SOP, '.' = inhibited neighbour."""
    lines = []
    for r in range(rows):
        line = "".join("*" if r * cols + c in selected else "." for c in range(cols))
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description="SOP selection on an epithelium")
    parser.add_argument("--quick", action="store_true", help="smaller tissue for smoke tests")
    args = parser.parse_args()
    rows, cols = (6, 12) if args.quick else (12, 24)
    tissue = epithelium(rows, cols)
    print(f"epithelium: {tissue.num_nodes} cells, {tissue.num_edges} contacts\n")

    stone_age = Simulation().run_protocol(tissue, MISProtocol(), seed=2011, backend="auto")
    sops = mis_from_result(stone_age)
    print("Stone Age nFSM selection (7 states, b = 1, no knowledge of the tissue size)")
    print(f"  rounds: {stone_age.rounds}, SOPs selected: {len(sops)}, "
          f"valid: {is_maximal_independent_set(tissue, sops)}")
    print(render_pattern(rows, cols, sops))
    print()

    beep_sops, beep_result = sop_selection_mis(tissue, seed=2011)
    print("Beeping SOP selection (Afek et al. style, needs to know ~n for the ramp)")
    print(f"  rounds: {beep_result.rounds}, SOPs selected: {len(beep_sops)}, "
          f"valid: {is_maximal_independent_set(tissue, beep_sops)}")
    print(render_pattern(rows, cols, beep_sops))


if __name__ == "__main__":
    main()
