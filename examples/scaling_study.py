#!/usr/bin/env python3
"""Mini scaling study: regenerate the headline growth curves on your laptop.

This is a lighter-weight version of the benchmark harness (see
``benchmarks/`` and EXPERIMENTS.md): it sweeps the Stone Age MIS and the tree
3-coloring protocols over doubling network sizes, prints rounds alongside the
log-normalised columns the theorems predict, and reports which growth
function fits the measurements best.

Both sweeps run through one :class:`repro.api.Simulation` session, so the
compiled transition tables stay warm across them, and each workload is a
declarative :class:`repro.api.RunSpec`.  The default ``backend="auto"``
selects the vectorized batch engine, which is what makes the 4096-node upper
sizes finish in seconds on a laptop; pass ``--backend python`` to compare
against the interpreted reference engine — the measured rounds are identical
either way.  ``--quick`` shrinks the workload to CI-smoke size.
"""

from __future__ import annotations

import argparse
import math

from repro.analysis import best_growth_fit, format_table, geometric_sizes
from repro.api import RunSpec, Simulation
from repro.protocols.coloring import coloring_from_result
from repro.protocols.mis import mis_from_result
from repro.verification import is_maximal_independent_set, is_proper_coloring

MIS_FAMILY_NAMES = ["random_tree", "gnp_sparse", "cycle", "grid"]
TREE_FAMILY_NAMES = ["random_tree", "path", "star", "binary_tree"]


# Module-level validators (not lambdas) so ``--workers`` can ship them to
# the worker processes of a pooled sweep.
def _valid_mis(graph, result) -> bool:
    return is_maximal_independent_set(graph, mis_from_result(result))


def _valid_coloring(graph, result) -> bool:
    return is_proper_coloring(graph, coloring_from_result(result))


def mis_study(session: Simulation, sizes: list[int], repetitions: int, backend: str,
              workers: int | None) -> None:
    sweep = session.sweep(
        RunSpec(protocol="mis", seed=1, backend=backend),
        families=MIS_FAMILY_NAMES,
        sizes=sizes,
        repetitions=repetitions,
        validator=_valid_mis,
        workers=workers,
    )
    by_size = sweep.mean_cost_by_size()
    rows = [
        (n, round(by_size[n], 1), round(by_size[n] / math.log2(n) ** 2, 3))
        for n in sorted(by_size)
    ]
    print("== MIS rounds vs n (Theorem 4.5 predicts O(log^2 n)) ==")
    print(format_table(["n", "mean rounds", "rounds / log2^2(n)"], rows))
    fit = best_growth_fit(list(by_size), list(by_size.values()))
    print(f"best fit: {fit.label}  (R^2 = {fit.r_squared:.3f}); "
          f"all runs produced valid MIS's: {sweep.all_valid()}\n")


def coloring_study(session: Simulation, sizes: list[int], repetitions: int, backend: str,
                   workers: int | None) -> None:
    sweep = session.sweep(
        RunSpec(protocol="coloring", seed=2, backend=backend),
        families=TREE_FAMILY_NAMES,
        sizes=sizes,
        repetitions=repetitions,
        validator=_valid_coloring,
        workers=workers,
    )
    by_size = sweep.mean_cost_by_size()
    rows = [
        (n, round(by_size[n], 1), round(by_size[n] / math.log2(n), 3))
        for n in sorted(by_size)
    ]
    print("== Tree 3-coloring rounds vs n (Theorem 5.4 predicts O(log n)) ==")
    print(format_table(["n", "mean rounds", "rounds / log2(n)"], rows))
    fit = best_growth_fit(list(by_size), list(by_size.values()))
    print(f"best fit: {fit.label}  (R^2 = {fit.r_squared:.3f}); "
          f"all runs produced proper 3-colorings: {sweep.all_valid()}")


def main() -> None:
    parser = argparse.ArgumentParser(description="Stone Age scaling study")
    parser.add_argument("--max-size", type=int, default=4096,
                        help="largest network size in the doubling ladder")
    parser.add_argument("--repetitions", type=int, default=2)
    parser.add_argument("--backend", choices=("python", "vectorized", "auto"),
                        default="auto")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for smoke tests (overrides --max-size)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard sweep cells over this many worker processes "
                             "(results are identical to serial execution)")
    args = parser.parse_args()
    max_size = 64 if args.quick else args.max_size
    repetitions = 1 if args.quick else args.repetitions
    sizes = geometric_sizes(16, max_size)
    session = Simulation()
    mis_study(session, sizes, repetitions, args.backend, args.workers)
    coloring_study(session, sizes, repetitions, args.backend, args.workers)


if __name__ == "__main__":
    main()
