#!/usr/bin/env python3
"""Mini scaling study: regenerate the headline growth curves on your laptop.

This is a lighter-weight version of the benchmark harness (see
``benchmarks/`` and EXPERIMENTS.md): it sweeps the Stone Age MIS and the tree
3-coloring protocols over doubling network sizes, prints rounds alongside the
log-normalised columns the theorems predict, and reports which growth
function fits the measurements best.

The sweeps run on the vectorized batch backend (``backend="auto"``), which
compiles the constant-size state machines into dense NumPy tables — that is
what makes the 4096-node upper sizes below finish in seconds on a laptop.
Pass ``backend="python"`` to :func:`sweep_protocol` to compare against the
interpreted reference engine; the measured rounds are identical either way.
"""

from __future__ import annotations

import math

from repro.analysis import best_growth_fit, format_table, geometric_sizes, sweep_protocol
from repro.analysis.experiments import MIS_FAMILIES, TREE_FAMILIES
from repro.protocols.coloring import TreeColoringProtocol, coloring_from_result
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.verification import is_maximal_independent_set, is_proper_coloring


def mis_study() -> None:
    sizes = geometric_sizes(16, 4096)
    sweep = sweep_protocol(
        MISProtocol,
        MIS_FAMILIES,
        sizes,
        repetitions=2,
        base_seed=1,
        validator=lambda graph, result: is_maximal_independent_set(
            graph, mis_from_result(result)
        ),
        backend="auto",
    )
    by_size = sweep.mean_cost_by_size()
    rows = [
        (n, round(by_size[n], 1), round(by_size[n] / math.log2(n) ** 2, 3))
        for n in sorted(by_size)
    ]
    print("== MIS rounds vs n (Theorem 4.5 predicts O(log^2 n)) ==")
    print(format_table(["n", "mean rounds", "rounds / log2^2(n)"], rows))
    fit = best_growth_fit(list(by_size), list(by_size.values()))
    print(f"best fit: {fit.label}  (R^2 = {fit.r_squared:.3f}); "
          f"all runs produced valid MIS's: {sweep.all_valid()}\n")


def coloring_study() -> None:
    sizes = geometric_sizes(16, 4096)
    sweep = sweep_protocol(
        TreeColoringProtocol,
        TREE_FAMILIES,
        sizes,
        repetitions=2,
        base_seed=2,
        validator=lambda graph, result: is_proper_coloring(
            graph, coloring_from_result(result)
        ),
        backend="auto",
    )
    by_size = sweep.mean_cost_by_size()
    rows = [
        (n, round(by_size[n], 1), round(by_size[n] / math.log2(n), 3))
        for n in sorted(by_size)
    ]
    print("== Tree 3-coloring rounds vs n (Theorem 5.4 predicts O(log n)) ==")
    print(format_table(["n", "mean rounds", "rounds / log2(n)"], rows))
    fit = best_growth_fit(list(by_size), list(by_size.values()))
    print(f"best fit: {fit.label}  (R^2 = {fit.r_squared:.3f}); "
          f"all runs produced proper 3-colorings: {sweep.all_valid()}")


def main() -> None:
    mis_study()
    coloring_study()


if __name__ == "__main__":
    main()
