#!/usr/bin/env python3
"""Dynamic networks: topology churn and re-convergence measurement.

The paper motivates stone-age computing with networks whose topology is not
fixed — sensors die, links drop, organisms move.  The dynamic environment
plays that story out: a seeded churn policy disturbs the graph between
stabilisations, the protocol's restart rule wakes exactly the region that
must recompute, and the engine measures how many rounds the network needs
to *re*-converge after each disturbance.

This demo runs the MIS protocol under ``burst`` edge-flip churn, prints the
per-disturbance measurement, shows that re-convergence verifies on the
post-churn snapshot, and sweeps two churn policies over the same base
graphs (the graph seed ignores the policy, so the comparison is per-graph).
Everything is a pure function of the spec: rerun with the same seed and
every number reproduces bitwise, on any backend.
"""

from __future__ import annotations

import argparse

from repro.api import RunSpec, Simulation
from repro.protocols.mis import mis_from_result
from repro.verification.checkers import is_maximal_independent_set


def main() -> None:
    parser = argparse.ArgumentParser(description="dynamic churn demo")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    nodes = args.nodes or (32 if args.quick else 256)

    session = Simulation()
    spec = RunSpec(
        protocol="mis",
        graph="gnp_sparse",
        nodes=nodes,
        seed=args.seed,
        environment="dynamic",
        churn="burst",
        churn_params={"flips": 4, "disturbances": 4},
    )

    result = session.simulate(spec)
    print(f"MIS under burst churn on gnp_sparse n={nodes} (seed {args.seed}):")
    print(f"  initial stabilisation : {result.metadata['initial_rounds']} rounds")
    for k, (rounds, restarts) in enumerate(
        zip(
            result.metadata["reconvergence_rounds"],
            result.metadata["restart_counts"],
        ),
        start=1,
    ):
        print(f"  disturbance {k}         : re-converged in {rounds} rounds "
              f"({restarts} nodes restarted)")
    print(f"  total                 : {result.rounds} rounds, "
          f"backend={result.metadata['backend']}")

    selected = mis_from_result(result)
    valid = is_maximal_independent_set(result.graph, selected)
    print(f"  final snapshot        : {result.graph.num_edges} edges, "
          f"MIS size {len(selected)}, valid={valid}")
    assert valid, "post-churn MIS failed verification"

    sizes = [24] if args.quick else [64, 128]
    sweep = session.sweep(
        spec,
        sizes=sizes,
        repetitions=2,
        churns=["burst", "rewire"],
    )
    print(f"\nchurn-policy sweep over sizes {sizes} (same base graph per cell):")
    for churn in sweep.churns():
        for size in sizes:
            costs = sweep.costs(size=size, churn=churn)
            mean_cost = sum(costs) / len(costs)
            print(f"  {churn:<7} n={size:<4} mean total rounds {mean_cost:.1f}")
    assert sweep.all_valid(), "a sweep cell failed post-churn verification"
    print("all sweep cells verified on their post-churn snapshots")


if __name__ == "__main__":
    main()
