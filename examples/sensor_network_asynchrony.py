#!/usr/bin/env python3
"""Sensor-network scenario: cluster-head election under messy timing.

A classical use of a maximal independent set is cluster-head election in an
ad-hoc sensor network: heads form an independent set (no two heads interfere)
and every other node is adjacent to a head it can report to.  Real sensor
nodes have drifting clocks, duty cycles and asymmetric link delays — exactly
the asynchrony the nFSM model allows the adversary to control.

This example builds a random geometric-ish deployment, compiles the Stone Age
MIS protocol with the synchronizer (Theorem 3.1), and elects cluster heads
under every adversarial timing policy shipped with the library.  The outcome
may differ per schedule (the protocol is randomized and the timing steers
it), but it is a valid head set every single time.
"""

from __future__ import annotations

import argparse
import random
import zlib

from repro.api import RunSpec, Simulation
from repro.compilers import compile_to_asynchronous
from repro.graphs import Graph
from repro.protocols.mis import MISProtocol, mis_from_result
from repro.scheduling import default_adversary_suite
from repro.verification import is_maximal_independent_set


def deployment(num_sensors: int, radio_range: float, seed: int) -> Graph:
    """Sensors dropped uniformly in the unit square; links below *radio_range*."""
    rng = random.Random(seed)
    positions = [(rng.random(), rng.random()) for _ in range(num_sensors)]
    edges = []
    for i in range(num_sensors):
        for j in range(i + 1, num_sensors):
            dx = positions[i][0] - positions[j][0]
            dy = positions[i][1] - positions[j][1]
            if dx * dx + dy * dy <= radio_range * radio_range:
                edges.append((i, j))
    return Graph(num_sensors, edges)


def deployment_family(n: int, seed: int | None = None) -> Graph:
    """``(n, seed) -> Graph`` family wrapper for sweeps (module-level so a
    pooled sweep can ship it to worker processes)."""
    return deployment(num_sensors=n, radio_range=0.42, seed=seed or 0)


def election_ladder(workers: int | None) -> None:
    """Sweep deployments × adversaries with one asynchronous sweep call.

    ``session.sweep`` on an ``environment="async"`` spec walks the full
    ``families × sizes × adversaries`` grid; the per-cell graph seed ignores
    the adversary, so every policy of a row is electing heads on the *same*
    deployment and the time-unit columns are directly comparable.
    """
    session = Simulation()
    sweep = session.sweep(
        RunSpec(protocol="mis", environment="async", seed=11),
        families={"deployment": deployment_family},
        sizes=[10, 14],
        adversaries=["synchronous", "uniform", "bursty"],
        repetitions=1,
        workers=workers,
    )
    print("\n== Election cost ladder (time units, same deployment per row) ==")
    header = f"{'n':>4}  " + "".join(f"{name:>14}" for name in sweep.adversaries())
    print(header)
    for size in sweep.sizes():
        cells = "".join(
            f"{sweep.costs(size=size, adversary=name)[0]:>14.1f}"
            for name in sweep.adversaries()
        )
        print(f"{size:>4}  {cells}")
    print(f"every cell produced a valid head set: {sweep.all_valid()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the election ladder sweep")
    args = parser.parse_args()
    network = deployment(num_sensors=14, radio_range=0.42, seed=7)
    print(f"sensor network: {network.num_nodes} nodes, {network.num_edges} radio links")
    print(f"max degree: {network.max_degree()}\n")

    compiled = compile_to_asynchronous(MISProtocol())
    print(f"compiled protocol: alphabet of {len(compiled.alphabet)} letters, "
          f"bounding parameter b = {compiled.bounding.value}\n")

    # One session runs the whole adversary suite; the shared ``cache_key``
    # keeps the compiled protocol's transition table warm across policies.
    session = Simulation()
    print(f"{'adversary':<18} {'heads':>5} {'time units':>11} {'node steps':>11} {'valid':>6}")
    for adversary in default_adversary_suite():
        result = session.run_protocol(
            network,
            compiled,
            environment="async",
            seed=42,
            adversary=adversary,
            # A stable hash: str.__hash__ is salted per process, which
            # would make the printed numbers differ between invocations.
            adversary_seed=zlib.crc32(adversary.name.encode()),
            max_events=6_000_000,
            cache_key="cluster-heads",
        )
        heads = mis_from_result(result)
        valid = is_maximal_independent_set(network, heads)
        print(f"{adversary.name:<18} {len(heads):>5} {result.time_units:>11.1f} "
              f"{result.total_node_steps:>11} {str(valid):>6}")

    print("\nEvery schedule yields a correct cluster-head set; the paper's synchronizer")
    print("keeps fast nodes at most one simulated round ahead of their slowest neighbour.")

    election_ladder(args.workers)


if __name__ == "__main__":
    main()
