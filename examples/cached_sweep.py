#!/usr/bin/env python3
"""Cached sweeps: run an experiment once, replay it from disk forever.

Seeded :class:`repro.api.RunSpec` workloads are bitwise-deterministic, so a
run's result is fully identified by the spec itself.  Pointing a session at
a result store (``Simulation(store=DIR)``) caches every seeded run on disk
under the SHA-256 of the spec's canonical JSON; rerunning the same sweep —
same machine or not, serial or pooled — replays it with **zero** engine
executions and byte-identical records.

The first invocation below executes and fills the store; every later one
answers from disk (watch the ``hits``/``misses`` counters flip).  Delete
the store directory, or bump any spec field, and the affected cells simply
recompute.  ``--store`` defaults to a throwaway directory so the demo is
self-contained; point it somewhere persistent to keep results across runs.
"""

from __future__ import annotations

import argparse
import tempfile
import time

from repro.api import RunSpec, Simulation
from repro.core.counters import engine_runs


def timed_sweep(session: Simulation, workers: int | None):
    start = time.perf_counter()
    engines_before = engine_runs()
    sweep = session.sweep(
        RunSpec(protocol="mis", seed=11),
        families=["random_tree", "gnp_sparse"],
        sizes=[64, 128, 256],
        repetitions=3,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    return sweep, elapsed, engine_runs() - engines_before


def main() -> None:
    parser = argparse.ArgumentParser(description="store-backed sweep demo")
    parser.add_argument("--store", default=None,
                        help="result store directory (default: a temp dir)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the cold run (warm replay never "
                             "needs workers — nothing executes)")
    args = parser.parse_args()
    store = args.store or tempfile.mkdtemp(prefix="repro-store-")

    cold_session = Simulation(store=store)
    cold, cold_s, cold_engines = timed_sweep(cold_session, args.workers)
    print(f"cold sweep: {len(cold.records)} records in {cold_s:.2f}s "
          f"({cold_engines} engine runs)")
    print(f"store counters: {cold_session.store.stats()}")

    warm_session = Simulation(store=store)
    warm, warm_s, warm_engines = timed_sweep(warm_session, None)
    print(f"\nwarm sweep: {len(warm.records)} records in {warm_s:.2f}s "
          f"({warm_engines} engine runs)")
    print(f"store counters: {warm_session.store.stats()}")

    identical = [
        (a.family, a.size, a.repetition, a.cost, a.valid)
        for a in warm.records
    ] == [
        (a.family, a.size, a.repetition, a.cost, a.valid)
        for a in cold.records
    ]
    print(f"\nwarm records identical to cold: {identical}")
    print(f"replayed without executing: {warm_engines == 0}")
    print(f"store: {store}  (reusable via `repro store stats {store}`)")


if __name__ == "__main__":
    main()
